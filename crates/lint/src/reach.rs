//! Interprocedural passes over the call graph: panic-reachability from the
//! daemon entry points, global lock-order over the collector crate, and
//! transitive hot-path lock detection.
//!
//! Every finding these passes raise carries a full witness call path
//! (`serve → process_frame → shard::fold → […]` with file:line per hop),
//! rendered by `ldp-lint --explain` and embedded in `--format json`.

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::rules::{Raw, LOCK_CALLS};
use crate::symbols::{FnDef, FnId, Symbols};
use crate::{FileLex, Hop};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Panic-reachability
// ---------------------------------------------------------------------------

/// Methods that panic on the error/none case.
const UNWRAP_METHODS: &[&str] = &["unwrap", "expect", "unwrap_unchecked"];

/// Unconditionally panicking macros. `assert!` family is deliberately *not*
/// a panic site: an assert is an explicit, message-carrying precondition
/// check, and its presence is what makes nearby raw indexing "checked" (see
/// `bounds_evidence`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers before `[` that mean the bracket is *not* an indexing
/// expression (array literals / types in expression position).
const NON_INDEX_PREV: &[&str] = &[
    "mut", "in", "dyn", "return", "break", "as", "else", "match", "if", "while", "loop", "unsafe",
    "move", "ref",
];

struct PanicSite {
    line: u32,
    what: &'static str,
    detail: String,
}

/// The daemon entry points: everything an adversarial peer can drive.
fn is_seed(def: &FnDef, rel: &str) -> bool {
    if def.is_test {
        return false;
    }
    if rel.ends_with("collector/src/server.rs") {
        return def.name == "serve" || def.name == "process_frame";
    }
    if rel.ends_with("protocols/src/wire.rs") {
        return def.name.starts_with("decode_") || def.name.starts_with("read_");
    }
    if rel.ends_with("collector/src/checkpoint.rs") {
        return def.name == "resume" || def.name == "checkpoint";
    }
    false
}

/// True when the function body carries *any* bounds discipline that
/// discharges raw indexing/slicing: a length read, a checked accessor, a
/// `MAX_*` cap, modular reduction, or an assert. This is deliberately
/// whole-body rather than flow-sensitive — a lexer cannot order guards
/// against uses, so the rule asks only that the function demonstrates it
/// thought about bounds at all; functions that index with no evidence
/// anywhere are the ones a hostile length reaches.
fn bounds_evidence(toks: &[Tok], def: &FnDef) -> bool {
    for i in def.body.clone() {
        let t = &toks[i];
        if t.is_punct('%') {
            return true;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text.starts_with("MAX_") {
            return true;
        }
        let callish = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let macroish = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let guard_call = matches!(
            t.text.as_str(),
            "len"
                | "is_empty"
                | "get"
                | "get_mut"
                | "min"
                | "clamp"
                | "checked_len"
                | "split_at_checked"
                | "div_ceil"
        );
        let guard_macro = matches!(
            t.text.as_str(),
            "assert"
                | "assert_eq"
                | "assert_ne"
                | "debug_assert"
                | "debug_assert_eq"
                | "debug_assert_ne"
        );
        if (callish && guard_call) || (macroish && guard_macro) {
            return true;
        }
    }
    false
}

fn panic_sites(
    f: &FileLex,
    def: &FnDef,
    call_sites: &[crate::callgraph::CallSite],
) -> Vec<PanicSite> {
    let toks = &f.toks;
    let evidence = bounds_evidence(toks, def);
    let mut sites = Vec::new();
    for i in def.body.clone() {
        if f.test_mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if UNWRAP_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                // `self.expect(…)` resolving to a method on the enclosing
                // type merely shares `Option::expect`'s name (e.g. the
                // client's frame-kind check); its body is analyzed through
                // the call graph instead. Only the precise receiver-`self`
                // resolution is trusted here — on arbitrary receivers the
                // resolver over-approximates, and skipping those would blind
                // the pass to every real `.expect()`.
                && !(i >= 2
                    && toks[i - 2].is_ident("self")
                    && call_sites
                        .iter()
                        .any(|s| s.tok == i && !s.callees.is_empty()))
            {
                sites.push(PanicSite {
                    line: t.line,
                    what: "panicking call",
                    detail: format!("`.{}()`", t.text),
                });
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                sites.push(PanicSite {
                    line: t.line,
                    what: "panicking macro",
                    detail: format!("`{}!`", t.text),
                });
            }
        } else if t.is_punct('[') && !evidence && i > 0 {
            let p = &toks[i - 1];
            let indexing = (p.kind == TokKind::Ident && !NON_INDEX_PREV.contains(&p.text.as_str()))
                || p.is_punct(']')
                || p.is_punct(')');
            // `v[..]` re-slices the whole range and cannot panic; `v[0]` has a
            // compile-time-constant index (adversary input never reaches the
            // bound, and on arrays the compiler checks it outright).
            let full_range = toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
                && toks.get(i + 2).is_some_and(|b| b.is_punct('.'))
                && toks.get(i + 3).is_some_and(|c| c.is_punct(']'));
            let const_index = toks.get(i + 1).is_some_and(|a| a.kind == TokKind::Num)
                && toks.get(i + 2).is_some_and(|b| b.is_punct(']'));
            if indexing && !full_range && !const_index {
                sites.push(PanicSite {
                    line: t.line,
                    what: "unchecked indexing",
                    detail: "`[…]` with no bounds evidence in the function".to_string(),
                });
            }
        }
    }
    sites
}

fn hop(sym: &Symbols, files: &[FileLex], id: FnId, line: u32) -> Hop {
    Hop {
        func: sym.fns[id].qual_name(),
        rel: files[sym.fns[id].file].rel.clone(),
        line,
    }
}

/// Turn a BFS parent map into the seed → … → `id` hop list; each hop's line
/// is where it calls the next function, and the last hop carries `last_line`
/// (the offending site).
fn witness_from_parents(
    sym: &Symbols,
    files: &[FileLex],
    parent: &[Option<(FnId, u32)>],
    id: FnId,
    last_line: u32,
) -> Vec<Hop> {
    let mut chain = vec![id];
    let mut cur = id;
    while let Some((p, _)) = parent[cur] {
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    let mut hops = Vec::with_capacity(chain.len());
    for w in chain.windows(2) {
        let call_line = parent[w[1]].map(|(_, l)| l).unwrap_or(0);
        hops.push(hop(sym, files, w[0], call_line));
    }
    hops.push(hop(sym, files, id, last_line));
    hops
}

/// The panic-reachability pass: BFS from every daemon entry point, then one
/// finding per panic site inside a reached function, each with a shortest
/// witness path. Returns `(file index, raw finding)` pairs.
pub(crate) fn panic_paths(
    files: &[FileLex],
    sym: &Symbols,
    graph: &CallGraph,
) -> Vec<(usize, Raw)> {
    let n = sym.fns.len();
    let mut parent: Vec<Option<(FnId, u32)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (id, def) in sym.fns.iter().enumerate() {
        if is_seed(def, &files[def.file].rel) {
            visited[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for site in &graph.sites[id] {
            for &c in &site.callees {
                if !visited[c] && !sym.fns[c].is_test {
                    visited[c] = true;
                    parent[c] = Some((id, site.line));
                    queue.push_back(c);
                }
            }
        }
    }
    let mut out = Vec::new();
    for (id, def) in sym.fns.iter().enumerate() {
        if !visited[id] {
            continue;
        }
        for site in panic_sites(&files[def.file], def, &graph.sites[id]) {
            let path = witness_from_parents(sym, files, &parent, id, site.line);
            let seed = path.first().map(|h| h.func.clone()).unwrap_or_default();
            out.push((
                def.file,
                Raw {
                    rule: "panic-path",
                    line: site.line,
                    message: format!(
                        "{} {} in `{}` is reachable from daemon entry `{seed}` \
                         ({} hops); return a typed error instead",
                        site.what,
                        site.detail,
                        def.qual_name(),
                        path.len(),
                    ),
                    call_path: path,
                },
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lock facts and closures
// ---------------------------------------------------------------------------

/// Lock classes in sanctioned acquisition order. The collector's discipline
/// is registry → slot → shard; any observed edge against that order closes a
/// cycle with the sanctioned forward edges and is reported.
pub(crate) const LOCK_CLASS_NAMES: [&str; 3] = ["registry (`rounds`)", "slot (`inner`)", "shard"];

/// Classify a lock call by what it locks: helper style `read_lock(&self.X)`
/// inspects the argument list; method style `self.X.read()` inspects the
/// receiver chain. Returns the class rank or `None` for locks outside the
/// collector's ordered classes.
fn classify_lock(toks: &[Tok], call: usize) -> Option<u8> {
    let mut names: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = call + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident {
            names.push(&t.text);
        }
        j += 1;
    }
    if call > 0 && toks[call - 1].is_punct('.') {
        let mut k = call - 1;
        let mut steps = 0;
        while k > 0 && steps < 12 {
            let t = &toks[k - 1];
            if t.kind == TokKind::Ident {
                names.push(&t.text);
            } else if !(t.is_punct('.') || t.is_punct('&') || t.is_punct(')') || t.is_punct('(')) {
                break;
            }
            k -= 1;
            steps += 1;
        }
    }
    if names.contains(&"rounds") {
        Some(0)
    } else if names.iter().any(|n| *n == "inner" || *n == "slot") {
        Some(1)
    } else if names.iter().any(|n| *n == "shards" || *n == "shard") {
        Some(2)
    } else {
        None
    }
}

/// If the call at `i` is the initializer of `let [mut] name = …`, return the
/// binding name.
fn let_binding_before(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    let mut steps = 0;
    while j > 0 && steps < 6 {
        if toks[j - 1].is_punct('=') {
            let name = toks.get(j.checked_sub(2)?)?;
            if name.kind == TokKind::Ident && name.text != "=" {
                return Some(name.text.clone());
            }
            return None;
        }
        let t = &toks[j - 1];
        if !(t.kind == TokKind::Ident || t.is_punct('&') || t.is_punct('.') || t.is_punct(':')) {
            return None;
        }
        j -= 1;
        steps += 1;
    }
    None
}

/// Lock call names that acquire unconditionally (the workspace helpers and
/// `Mutex::lock`). Bare `read`/`write` only count when the receiver/argument
/// classifies into an ordered class, so `io::Read::read` stays invisible.
const ALWAYS_LOCK: &[&str] = &["lock", "try_lock", "read_lock", "write_lock"];

/// Per-function local lock behaviour.
pub(crate) struct LockFacts {
    /// Classes acquired directly in this body: `(class, first line)`.
    acquires: Vec<(u8, u32)>,
    /// First line of *any* lock acquisition (class-ordered or not).
    any_lock: Option<u32>,
    /// Direct nesting: `(held class, acquired class, line)`.
    local_edges: Vec<(u8, u8, u32)>,
    /// Parallel to the function's call-site list: classes held entering
    /// each call.
    held_at: Vec<Vec<u8>>,
}

/// Closures over the call graph.
pub(crate) struct Locks {
    pub facts: Vec<LockFacts>,
    /// Per function: bitmask of lock classes acquired by it or anything it
    /// transitively calls.
    acq_closure: Vec<u8>,
    /// Per function: does it (transitively) acquire any lock at all?
    any_closure: Vec<bool>,
}

fn lock_facts_one(f: &FileLex, def: &FnDef, sites: &[crate::callgraph::CallSite]) -> LockFacts {
    let toks = &f.toks;
    let mut facts = LockFacts {
        acquires: Vec::new(),
        any_lock: None,
        local_edges: Vec::new(),
        held_at: vec![Vec::new(); sites.len()],
    };
    let mut depth = 0i32;
    // Live guards: (class, binding name or None for a temporary, block depth).
    let mut guards: Vec<(u8, Option<String>, i32)> = Vec::new();
    let mut sp = 0usize;
    for i in def.body.clone() {
        let t = &toks[i];
        if sp < sites.len() && sites[sp].tok == i {
            let mut held: Vec<u8> = guards.iter().map(|&(c, _, _)| c).collect();
            held.sort_unstable();
            held.dedup();
            facts.held_at[sp] = held;
            sp += 1;
        }
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            guards.retain(|&(_, ref name, d)| name.is_some() && d <= depth);
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|(_, name, _)| name.is_some());
            continue;
        }
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "drop"
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = &toks[i + 2].text;
            guards.retain(|(_, g, _)| g.as_deref() != Some(name));
            continue;
        }
        if !LOCK_CALLS.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let class = classify_lock(toks, i);
        let acquires_any = ALWAYS_LOCK.contains(&t.text.as_str()) || class.is_some();
        if acquires_any && facts.any_lock.is_none() {
            facts.any_lock = Some(t.line);
        }
        if let Some(c) = class {
            let mut held: Vec<u8> = guards.iter().map(|&(h, _, _)| h).collect();
            held.sort_unstable();
            held.dedup();
            for h in held {
                facts.local_edges.push((h, c, t.line));
            }
            if !facts.acquires.iter().any(|&(a, _)| a == c) {
                facts.acquires.push((c, t.line));
            }
            guards.push((c, let_binding_before(toks, i), depth));
        }
    }
    facts
}

/// Compute per-function lock facts and their transitive closures over the
/// call graph (simple fixpoint; the graph is small).
pub(crate) fn lock_closures(files: &[FileLex], sym: &Symbols, graph: &CallGraph) -> Locks {
    let n = sym.fns.len();
    let facts: Vec<LockFacts> = sym
        .fns
        .iter()
        .enumerate()
        .map(|(id, def)| lock_facts_one(&files[def.file], def, &graph.sites[id]))
        .collect();
    let mut acq: Vec<u8> = facts
        .iter()
        .map(|f| f.acquires.iter().fold(0u8, |m, &(c, _)| m | (1 << c)))
        .collect();
    let mut any: Vec<bool> = facts.iter().map(|f| f.any_lock.is_some()).collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            let mut m = acq[id];
            let mut a = any[id];
            for site in &graph.sites[id] {
                for &c in &site.callees {
                    m |= acq[c];
                    a |= any[c];
                }
            }
            if m != acq[id] || a != any[id] {
                acq[id] = m;
                any[id] = a;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Locks {
        facts,
        acq_closure: acq,
        any_closure: any,
    }
}

/// BFS from `start` to the nearest function that locally satisfies `local`;
/// returns the hop chain ending at that function's relevant line.
fn closure_witness(
    sym: &Symbols,
    files: &[FileLex],
    graph: &CallGraph,
    start: FnId,
    local: impl Fn(FnId) -> Option<u32>,
    follow: impl Fn(FnId) -> bool,
) -> Vec<Hop> {
    let n = sym.fns.len();
    let mut parent: Vec<Option<(FnId, u32)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(id) = queue.pop_front() {
        if let Some(line) = local(id) {
            return witness_from_parents(sym, files, &parent, id, line);
        }
        for site in &graph.sites[id] {
            for &c in &site.callees {
                if !visited[c] && follow(c) {
                    visited[c] = true;
                    parent[c] = Some((id, site.line));
                    queue.push_back(c);
                }
            }
        }
    }
    Vec::new()
}

// ---------------------------------------------------------------------------
// Global lock-order
// ---------------------------------------------------------------------------

/// The global lock-order pass: per-function acquisition/held-at-call-site
/// facts, closed over the call graph. Any acquisition edge against the
/// sanctioned registry → slot → shard order closes a cycle in the lock graph
/// and is reported with the witness call path to the offending acquisition.
/// Same-class nesting (e.g. two shard mutexes in sequence) is out of scope —
/// shard locks are ordered by index at the data-structure level.
pub(crate) fn lock_order_global(
    files: &[FileLex],
    sym: &Symbols,
    graph: &CallGraph,
    locks: &Locks,
) -> Vec<(usize, Raw)> {
    let mut out = Vec::new();
    for (id, def) in sym.fns.iter().enumerate() {
        if def.is_test || !files[def.file].rel.contains("collector/src/") {
            continue;
        }
        let facts = &locks.facts[id];
        for &(h, a, line) in &facts.local_edges {
            if h > a {
                out.push((
                    def.file,
                    Raw {
                        rule: "lock-order",
                        line,
                        message: order_message(h, a, &def.qual_name()),
                        call_path: vec![hop(sym, files, id, line)],
                    },
                ));
            }
        }
        for (si, site) in graph.sites[id].iter().enumerate() {
            let held = &facts.held_at[si];
            if held.is_empty() {
                continue;
            }
            let mut seen: Vec<(u8, u8)> = Vec::new();
            for &c in &site.callees {
                for a in 0..3u8 {
                    if locks.acq_closure[c] & (1 << a) == 0 {
                        continue;
                    }
                    for &h in held {
                        if h <= a || seen.contains(&(h, a)) {
                            continue;
                        }
                        seen.push((h, a));
                        let mut path = vec![hop(sym, files, id, site.line)];
                        path.extend(closure_witness(
                            sym,
                            files,
                            graph,
                            c,
                            |g| {
                                locks.facts[g]
                                    .acquires
                                    .iter()
                                    .find(|&&(cl, _)| cl == a)
                                    .map(|&(_, l)| l)
                            },
                            |g| locks.acq_closure[g] & (1 << a) != 0,
                        ));
                        out.push((
                            def.file,
                            Raw {
                                rule: "lock-order",
                                line: site.line,
                                message: order_message(h, a, &def.qual_name()),
                                call_path: path,
                            },
                        ));
                    }
                }
            }
        }
    }
    out
}

fn order_message(held: u8, acquired: u8, func: &str) -> String {
    format!(
        "{} lock acquired in `{func}` while a {} guard is held; \
         the sanctioned order is registry → slot → shard",
        LOCK_CLASS_NAMES[acquired as usize], LOCK_CLASS_NAMES[held as usize],
    )
}

// ---------------------------------------------------------------------------
// Transitive hot-path
// ---------------------------------------------------------------------------

/// The transitive hot-path pass: a call from inside a `hot-path(begin/end)`
/// region into any function whose closure acquires a lock. Literal lock
/// calls on the marked lines are covered by the token-level `hot-path-lock`
/// scan; this pass adds the cross-function cases.
pub(crate) fn hot_path_transitive(
    files: &[FileLex],
    sym: &Symbols,
    graph: &CallGraph,
    locks: &Locks,
    regions: &[Vec<(u32, u32)>],
) -> Vec<(usize, Raw)> {
    let mut out = Vec::new();
    for (id, def) in sym.fns.iter().enumerate() {
        if def.is_test {
            continue;
        }
        let regs = &regions[def.file];
        if regs.is_empty() {
            continue;
        }
        let f = &files[def.file];
        for site in &graph.sites[id] {
            if f.test_mask[site.tok] || !regs.iter().any(|&(a, b)| site.line > a && site.line < b) {
                continue;
            }
            for &c in &site.callees {
                if !locks.any_closure[c] {
                    continue;
                }
                let mut path = vec![hop(sym, files, id, site.line)];
                path.extend(closure_witness(
                    sym,
                    files,
                    graph,
                    c,
                    |g| locks.facts[g].any_lock,
                    |g| locks.any_closure[g],
                ));
                let acquirer = path.last().map(|h| h.func.clone()).unwrap_or_default();
                out.push((
                    def.file,
                    Raw {
                        rule: "hot-path-lock",
                        line: site.line,
                        message: format!(
                            "call to `{}` inside a hot-path region acquires a lock \
                             (in `{acquirer}`); folds must run lock-free under the \
                             already-held shard lock",
                            sym.fns[c].qual_name(),
                        ),
                        call_path: path,
                    },
                ));
                break;
            }
        }
    }
    out
}
