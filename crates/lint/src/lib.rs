//! `ldp-lint` — a workspace static-analysis pass that mechanically enforces
//! the repo's determinism, panic-freedom, locking, and wire-totality
//! invariants.
//!
//! The tool is std-only (the workspace is hermetic: no registry access, so no
//! `syn`). It lexes every `.rs` file with a hand-rolled comment/string-correct
//! lexer ([`lexer`]) and runs a fixed set of named rules ([`rules::RULES`])
//! over the token streams. Justified exceptions are annotated in source:
//!
//! ```text
//! // ldp-lint: allow(rule-name) -- why this site is safe
//! ```
//!
//! An `allow` suppresses findings of that rule on the same line or the line
//! below. An `allow` without a `-- reason` is itself an error
//! (`allow-without-reason`), and an `allow` that suppresses nothing is an
//! error (`unused-allow`) so suppressions cannot rot. Shard-fold hot paths
//! are delimited with region markers that *add* a rule (no lock acquisition
//! inside):
//!
//! ```text
//! // ldp-lint: hot-path(begin) -- held shard mutex: no further locks
//! ...
//! // ldp-lint: hot-path(end)
//! ```
//!
//! See DESIGN.md §9 for the rule catalog and rationale.

pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, one of [`rules::RULES`].
    pub rule: &'static str,
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.message
        )
    }
}

/// A lexed workspace file, ready for rule passes.
pub(crate) struct FileLex {
    pub rel: String,
    pub toks: Vec<lexer::Tok>,
    /// Per-token flag: true if the token is inside a `#[cfg(test)]` /
    /// `#[test]` item (including the attribute itself).
    pub test_mask: Vec<bool>,
}

/// Lint every `.rs` file under `root`. Findings come back sorted by
/// `(rel, line, rule)` so output is deterministic.
///
/// Skipped subtrees: `target/`, `.git/`, `crates/compat/` (vendored
/// third-party subsets — not ours to hold to these invariants), and
/// `crates/lint/fixtures/` (seeded violations used by the lint's own tests).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut lexed = Vec::with_capacity(files.len());
    for path in &files {
        let src = fs::read_to_string(path)?;
        let toks = lexer::lex(&src);
        let test_mask = rules::test_mask(&toks);
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        lexed.push(FileLex {
            rel,
            toks,
            test_mask,
        });
    }

    let mut findings = rules::run(&lexed);
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.rule).cmp(&(b.rel.as_str(), b.line, b.rule)));
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str: String = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if rel_str == "crates/compat" || rel_str == "crates/lint/fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
