//! `ldp-lint` — a workspace static-analysis pass that mechanically enforces
//! the repo's determinism, panic-freedom, locking, and wire-totality
//! invariants.
//!
//! The tool is std-only (the workspace is hermetic: no registry access, so no
//! `syn`). It lexes every `.rs` file with a hand-rolled comment/string-correct
//! lexer ([`lexer`]) and runs a fixed set of named rules ([`rules::RULES`])
//! over the token streams. Since PR 8 the engine is *interprocedural*: a
//! symbol table (`symbols`) and call graph (`callgraph`) over all workspace
//! crates feed reachability passes (`reach`) — panic paths from the daemon
//! entry points, global lock ordering, and transitive hot-path lock
//! detection — whose findings carry full witness call paths.
//!
//! Justified exceptions are annotated in source:
//!
//! ```text
//! // ldp-lint: allow(rule-name) -- why this site is safe
//! ```
//!
//! An `allow` suppresses findings of that rule on the same line or the line
//! below. An `allow` without a `-- reason` is itself an error
//! (`allow-without-reason`), and an `allow` that suppresses nothing is an
//! error (`unused-allow`) so suppressions cannot rot. Shard-fold hot paths
//! are delimited with region markers that *add* a rule (no lock acquisition
//! inside, even transitively through calls):
//!
//! ```text
//! // ldp-lint: hot-path(begin) -- held shard mutex: no further locks
//! ...
//! // ldp-lint: hot-path(end)
//! ```
//!
//! See DESIGN.md §9 for the rule catalog and the call-graph construction
//! rules.

pub mod lexer;
pub mod rules;

pub(crate) mod callgraph;
pub(crate) mod reach;
pub(crate) mod symbols;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One hop of an interprocedural witness path: a function, its file, and the
/// line where it calls the next hop (for the last hop, the offending site).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// `Type::method` or bare function name.
    pub func: String,
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// 1-based source line.
    pub line: u32,
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, one of [`rules::RULES`].
    pub rule: &'static str,
    /// Path relative to the linted root, `/`-separated.
    pub rel: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
    /// For interprocedural rules, the witness call path from the entry point
    /// (or lock-holding caller) down to the offending site. Empty for
    /// token-level rules. Rendered by `--explain` and `--format json`.
    pub call_path: Vec<Hop>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.rel, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Multi-line rendering with the witness call path, one `file:line` per
    /// hop (`--explain`).
    pub fn explain(&self) -> String {
        let mut s = self.to_string();
        if !self.call_path.is_empty() {
            let arrows = self
                .call_path
                .iter()
                .map(|h| h.func.as_str())
                .collect::<Vec<_>>()
                .join(" → ");
            s.push_str(&format!("\n    path: {arrows}"));
            for h in &self.call_path {
                s.push_str(&format!("\n      {}:{} {}", h.rel, h.line, h.func));
            }
        }
        s
    }
}

/// Phase wall-clock breakdown for `--timing`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    /// Files lexed.
    pub files: usize,
    /// Walking + reading + lexing (parallel across files).
    pub lex: Duration,
    /// Rule passes including the interprocedural analyses (single-threaded,
    /// deterministic).
    pub analyze: Duration,
}

/// A lexed workspace file, ready for rule passes.
pub(crate) struct FileLex {
    pub rel: String,
    pub toks: Vec<lexer::Tok>,
    /// Per-token flag: true if the token is inside a `#[cfg(test)]` /
    /// `#[test]` item (including the attribute itself).
    pub test_mask: Vec<bool>,
}

/// Lint every `.rs` file under `root`. Findings come back sorted by
/// `(rel, line, rule)` so output is deterministic.
///
/// Skipped subtrees: `target/`, `.git/`, `crates/compat/` (vendored
/// third-party subsets — not ours to hold to these invariants), and
/// `crates/lint/fixtures/` (seeded violations used by the lint's own tests).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_timed(root).map(|(findings, _)| findings)
}

/// [`lint_workspace`] plus the per-phase [`Timing`] breakdown.
///
/// Lexing is fanned out over scoped threads (file-parallel, results land in
/// path order, so output is identical at any thread count); analysis is
/// single-threaded by design — the interprocedural passes are cheap and
/// determinism matters more than the last millisecond.
pub fn lint_workspace_timed(root: &Path) -> io::Result<(Vec<Finding>, Timing)> {
    let t0 = std::time::Instant::now();
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let lexed = lex_files(root, &files)?;
    let t1 = std::time::Instant::now();

    let mut findings = rules::run(&lexed);
    findings
        .sort_by(|a, b| (a.rel.as_str(), a.line, a.rule).cmp(&(b.rel.as_str(), b.line, b.rule)));
    findings.dedup();
    let t2 = std::time::Instant::now();
    Ok((
        findings,
        Timing {
            files: files.len(),
            lex: t1.duration_since(t0),
            analyze: t2.duration_since(t1),
        },
    ))
}

/// Read and lex `files` on scoped worker threads, one contiguous chunk per
/// worker. Slots are pre-addressed by index, so the result order is the
/// sorted path order regardless of thread interleaving.
fn lex_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<FileLex>> {
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(8)
        .min(files.len().max(1));
    let mut slots: Vec<io::Result<Option<FileLex>>> = Vec::with_capacity(files.len());
    slots.resize_with(files.len(), || Ok(None));
    let chunk_len = files.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (file_chunk, slot_chunk) in files.chunks(chunk_len).zip(slots.chunks_mut(chunk_len)) {
            scope.spawn(move || {
                for (path, slot) in file_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = lex_one(root, path).map(Some);
                }
            });
        }
    });
    let mut lexed = Vec::with_capacity(files.len());
    for slot in slots {
        match slot? {
            Some(fl) => lexed.push(fl),
            None => unreachable!("every slot is written by exactly one worker"),
        }
    }
    Ok(lexed)
}

fn lex_one(root: &Path, path: &Path) -> io::Result<FileLex> {
    let src = fs::read_to_string(path)?;
    let toks = lexer::lex(&src);
    let test_mask = rules::test_mask(&toks);
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Ok(FileLex {
        rel,
        toks,
        test_mask,
    })
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str: String = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if rel_str == "crates/compat" || rel_str == "crates/lint/fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON output (hand-rolled: the workspace is serde-free)
// ---------------------------------------------------------------------------

/// Encode findings as JSON with a stable schema:
///
/// ```json
/// {"findings":[{"rule":"…","path":"…","line":1,"message":"…",
///   "call_path":[{"func":"…","path":"…","line":1}]}],"count":1}
/// ```
///
/// Keys are emitted in exactly this order; `call_path` is always present
/// (empty for token-level rules), so consumers never need schema probing.
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"rule\":");
        json_str(&mut s, f.rule);
        s.push_str(",\"path\":");
        json_str(&mut s, &f.rel);
        s.push_str(&format!(",\"line\":{}", f.line));
        s.push_str(",\"message\":");
        json_str(&mut s, &f.message);
        s.push_str(",\"call_path\":[");
        for (j, h) in f.call_path.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str("{\"func\":");
            json_str(&mut s, &h.func);
            s.push_str(",\"path\":");
            json_str(&mut s, &h.rel);
            s.push_str(&format!(",\"line\":{}}}", h.line));
        }
        s.push_str("]}");
    }
    s.push_str(&format!("],\"count\":{}}}", findings.len()));
    s.push('\n');
    s
}

/// Append `v` as a JSON string literal: `"`, `\`, and control characters
/// escaped per RFC 8259.
fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
