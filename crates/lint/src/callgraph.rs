//! Call-site extraction and resolution over the symbol table.
//!
//! Resolution is name-based and deliberately conservative in the direction
//! each rule needs (DESIGN.md §9):
//!
//! * `recv.name(…)` — a method call through any receiver resolves to **every**
//!   workspace `impl` method named `name`. This over-approximates trait-object
//!   and generic dispatch (the receiver's type is unknown at the token level),
//!   which is sound for reachability-style rules: a spurious edge can only add
//!   findings, never hide one. A receiver that is literally `self` is narrowed
//!   to the enclosing `impl` type's own methods when one matches.
//! * `Qual::name(…)` — resolved against the workspace type registry: a known
//!   type's methods, a known trait's implementors, or (for module-style paths
//!   like `wire::decode_view`) free functions named `name`.
//! * `name(…)` — free functions named `name`.
//!
//! Calls into `std` or vendored code resolve to nothing: the analyses treat
//! external callees as panic-free and lock-free, and cover their known
//! panicking surfaces (indexing, `unwrap`) syntactically at the call site
//! instead.

use crate::lexer::TokKind;
use crate::symbols::{FnId, Symbols};
use crate::FileLex;

/// One call site inside a function body.
pub(crate) struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// Resolved workspace callees (empty for external calls).
    pub callees: Vec<FnId>,
}

/// Per-function call sites, indexed by caller [`FnId`].
pub(crate) struct CallGraph {
    pub sites: Vec<Vec<CallSite>>,
}

/// Identifiers that look like calls (`ident (`) but are control flow or
/// binding syntax.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "else", "let", "mut",
    "ref", "break", "continue", "where", "unsafe", "fn", "impl", "dyn", "await", "box", "yield",
    "union", "use", "pub", "crate", "super", "Self",
];

/// Build the call graph: walk every function body and resolve its call
/// sites against the symbol table.
pub(crate) fn build(files: &[FileLex], sym: &Symbols) -> CallGraph {
    let mut sites: Vec<Vec<CallSite>> = Vec::with_capacity(sym.fns.len());
    for def in &sym.fns {
        let f = &files[def.file];
        let toks = &f.toks;
        let mut list: Vec<CallSite> = Vec::new();
        for i in def.body.clone() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            let name = t.text.as_str();
            let callees = if i > 0 && toks[i - 1].is_punct('.') {
                resolve_method(sym, def.owner.as_deref(), toks, i, name)
            } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                let qual = toks
                    .get(i.wrapping_sub(3))
                    .filter(|q| q.kind == TokKind::Ident)
                    .map(|q| q.text.as_str());
                resolve_qualified(sym, def.owner.as_deref(), qual, name)
            } else if NON_CALL_KEYWORDS.contains(&name) {
                continue;
            } else {
                resolve_free(sym, name)
            };
            list.push(CallSite {
                tok: i,
                line: t.line,
                callees,
            });
        }
        sites.push(list);
    }
    CallGraph { sites }
}

/// Candidates for `name` filtered by `keep`, in definition order (stable:
/// files are walked sorted, bodies front to back).
fn candidates(sym: &Symbols, name: &str, keep: impl Fn(FnId) -> bool) -> Vec<FnId> {
    sym.by_name
        .get(name)
        .map(|ids| {
            ids.iter()
                .copied()
                .filter(|&id| !sym.fns[id].is_test && keep(id))
                .collect()
        })
        .unwrap_or_default()
}

fn resolve_method(
    sym: &Symbols,
    owner: Option<&str>,
    toks: &[crate::lexer::Tok],
    i: usize,
    name: &str,
) -> Vec<FnId> {
    // `self.name(…)`: the receiver type is known — restrict to the enclosing
    // impl type's own methods. (If none match, the call targets a trait
    // default or inherited method we don't model; resolve to nothing rather
    // than to every same-named method in the workspace.)
    let recv_is_self = i >= 2
        && toks[i - 2].is_ident("self")
        && !toks.get(i.wrapping_sub(3)).is_some_and(|p| p.is_punct('.'));
    if recv_is_self {
        if let Some(o) = owner {
            return candidates(sym, name, |id| sym.fns[id].owner.as_deref() == Some(o));
        }
    }
    // Any other receiver: every workspace impl method with this name.
    candidates(sym, name, |id| sym.fns[id].owner.is_some())
}

fn resolve_qualified(
    sym: &Symbols,
    owner: Option<&str>,
    qual: Option<&str>,
    name: &str,
) -> Vec<FnId> {
    let qual = match qual {
        Some("Self") => owner,
        q => q,
    };
    let Some(q) = qual else {
        return Vec::new();
    };
    if sym.types.contains(q) {
        let own = candidates(sym, name, |id| sym.fns[id].owner.as_deref() == Some(q));
        if !own.is_empty() {
            return own;
        }
        return Vec::new();
    }
    if sym.traits.contains(q) {
        // `Trait::method(x)` UFCS: any implementor.
        return candidates(sym, name, |id| sym.fns[id].owner.is_some());
    }
    // Module-style path (`wire::decode_view`, `checkpoint::resume`): the
    // final segment names a free function.
    resolve_free(sym, name)
}

fn resolve_free(sym: &Symbols, name: &str) -> Vec<FnId> {
    candidates(sym, name, |id| sym.fns[id].owner.is_none())
}
