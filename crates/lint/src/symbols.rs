//! Symbol table over the lexed workspace: every `fn` definition in the
//! `src/` trees, with its enclosing `impl` target (if any), its body token
//! range, and the set of workspace-defined type and trait names.
//!
//! Only `src/` files contribute definitions — integration tests, benches and
//! examples are deliberately outside the analysis domain so the call graph
//! never resolves a daemon-path call into a test helper that happens to share
//! a name. (Test-masked functions inside `src/` files are recorded but marked
//! `is_test`, and the resolver never returns them as candidates.)

use crate::lexer::{Tok, TokKind};
use crate::FileLex;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Index into [`Symbols::fns`].
pub(crate) type FnId = usize;

/// One `fn` definition.
pub(crate) struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `Foo` for a method defined in `impl Foo` / `impl Trait for Foo`;
    /// `None` for free functions (and trait-declaration default bodies).
    pub owner: Option<String>,
    /// Index into the lexed file list.
    pub file: usize,
    /// Token index range of the body *interior* (between the braces).
    /// Empty for bodyless trait-method declarations.
    pub body: Range<usize>,
    /// True when the definition sits under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace symbol table.
pub(crate) struct Symbols {
    pub fns: Vec<FnDef>,
    /// Bare name → every definition carrying it.
    pub by_name: BTreeMap<String, Vec<FnId>>,
    /// Workspace-defined nominal types: `struct`/`enum`/`union` declarations
    /// plus every `impl` target.
    pub types: BTreeSet<String>,
    /// Workspace-declared trait names (`trait Foo { … }`).
    pub traits: BTreeSet<String>,
}

/// True for files that contribute definitions to the call graph: anything
/// under a `src/` directory.
pub(crate) fn in_analysis_domain(rel: &str) -> bool {
    rel.starts_with("src/") || rel.contains("/src/")
}

/// Build the symbol table over every analysis-domain file.
pub(crate) fn build(files: &[FileLex]) -> Symbols {
    let mut sym = Symbols {
        fns: Vec::new(),
        by_name: BTreeMap::new(),
        types: BTreeSet::new(),
        traits: BTreeSet::new(),
    };
    for (fi, f) in files.iter().enumerate() {
        if !in_analysis_domain(&f.rel) {
            continue;
        }
        scan_file(fi, f, &mut sym);
    }
    for (id, def) in sym.fns.iter().enumerate() {
        sym.by_name.entry(def.name.clone()).or_default().push(id);
    }
    sym
}

fn scan_file(fi: usize, f: &FileLex, sym: &mut Symbols) {
    let toks = &f.toks;
    let mut depth = 0i32;
    // (owner type, brace depth of the impl body interior).
    let mut impl_stack: Vec<(Option<String>, i32)> = Vec::new();
    let mut pending_impl: Option<Option<String>> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            if let Some(owner) = pending_impl.take() {
                impl_stack.push((owner, depth));
            }
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                impl_stack.pop();
            }
            depth -= 1;
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "struct" | "enum" | "union" => {
                if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    sym.types.insert(n.text.clone());
                }
            }
            "trait" => {
                if let Some(n) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    sym.traits.insert(n.text.clone());
                }
            }
            "impl" => {
                pending_impl = Some(impl_target(toks, i, sym));
            }
            "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    let owner = impl_stack.last().and_then(|(o, _)| o.clone());
                    let body = fn_body_range(toks, i + 2);
                    sym.fns.push(FnDef {
                        name: name.text.clone(),
                        owner,
                        file: fi,
                        body,
                        is_test: f.test_mask[i],
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Parse the target type of an `impl` header starting at the `impl` keyword:
/// `impl<G> Foo<G>` → `Foo`, `impl Trait for Foo` → `Foo`. Generic parameter
/// lists are skipped by angle-bracket depth. Returns `None` for targets the
/// lexer can't name (references, slices, `impl Trait for &T`, …).
fn impl_target(toks: &[Tok], impl_idx: usize, sym: &mut Symbols) -> Option<String> {
    let mut angle = 0i32;
    let mut first: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    for t in &toks[impl_idx + 1..] {
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        if t.is_punct('<') {
            angle += 1;
            continue;
        }
        if t.is_punct('>') {
            angle -= 1;
            continue;
        }
        if angle != 0 {
            continue;
        }
        if t.is_ident("for") {
            saw_for = true;
            continue;
        }
        if t.is_ident("where") {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "dyn" && t.text != "mut" {
            if saw_for {
                if after_for.is_none() {
                    after_for = Some(&t.text);
                }
            } else if first.is_none() {
                first = Some(&t.text);
            }
        }
    }
    let target = if saw_for { after_for } else { first };
    let target = target.map(str::to_string);
    if let Some(t) = &target {
        sym.types.insert(t.clone());
    }
    target
}

/// From just after the fn name, find the body interior token range: scan to
/// the first `{` at paren depth 0 (a `;` first means a bodyless trait
/// declaration), then to its matching `}`.
fn fn_body_range(toks: &[Tok], from: usize) -> Range<usize> {
    let mut paren = 0i32;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct(';') {
                return 0..0;
            }
            if t.is_punct('{') {
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        depth += 1;
                    } else if toks[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1..k;
                        }
                    }
                    k += 1;
                }
                return j + 1..toks.len();
            }
        }
        j += 1;
    }
    0..0
}
