//! A minimal hand-rolled Rust lexer.
//!
//! `ldp-lint` is std-only (the workspace vendors no registry crates, so no
//! `syn`), and its rules only need a token stream that is *comment-, string-,
//! char- and raw-string-correct*: an `unwrap` inside a string literal or a
//! doc comment must not trigger the panic-freedom rule, and an
//! `// ldp-lint: allow(..)` annotation must be recognized as a comment token
//! rather than code. Beyond that the lexer is deliberately coarse: multi-char
//! operators come out as single-char `Punct` runs (`::` is `:`,`:`) and
//! numeric literals are kept as raw text.

/// What kind of token this is. Rules mostly match on `Ident`, `Punct` and
/// `Comment`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Numeric literal, raw text preserved (`0x81`, `1_000`, `2.5e-3`).
    Num,
    /// String-like literal: `"…"`, `r#"…"#`, `b"…"`, `br"…"`. Text dropped.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`. Text dropped.
    Char,
    /// Line or block comment; full text preserved (including `//` / `/*`).
    Comment,
    /// Any other single character (`{`, `.`, `(`, `&`, ...).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True if this is an identifier with exactly the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied();
        if let Some(b) = b {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        b
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token vector. Never fails: unterminated literals simply
/// swallow the rest of the file, which is the useful behavior for a linter
/// (rustc will reject the file anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = cur.peek(0) {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                toks.push(tok(TokKind::Comment, &src[start..cur.pos], line));
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                let start = cur.pos;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                toks.push(tok(TokKind::Comment, &src[start..cur.pos], line));
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                lex_prefixed_literal(&mut cur, &mut toks, line);
            }
            b'"' => {
                cur.bump();
                lex_quoted(&mut cur, b'"');
                toks.push(tok(TokKind::Str, "", line));
            }
            b'\'' => {
                lex_quote(&mut cur, src, &mut toks, line);
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                toks.push(tok(TokKind::Ident, &src[start..cur.pos], line));
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                // Float part: `.` followed by a digit (not `..` ranges, not
                // method calls like `1.max(..)` which need an ident after).
                if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                }
                // Exponent sign: `1e-3`, `2.5E+7`.
                if matches!(cur.peek(0), Some(b'+') | Some(b'-'))
                    && src[start..cur.pos].ends_with(['e', 'E'])
                {
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                }
                toks.push(tok(TokKind::Num, &src[start..cur.pos], line));
            }
            _ => {
                cur.bump();
                toks.push(tok(TokKind::Punct, &src[cur.pos - 1..cur.pos], line));
            }
        }
    }
    toks
}

fn tok(kind: TokKind, text: &str, line: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
    }
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, `br#` — i.e. a
/// prefixed literal rather than an ident starting with `r`/`b`?
fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    matches!(
        (cur.peek(0), cur.peek(1), cur.peek(2)),
        (Some(b'r'), Some(b'"' | b'#'), _)
            | (Some(b'b'), Some(b'"' | b'\''), _)
            | (Some(b'b'), Some(b'r'), Some(b'"' | b'#'))
    )
}

fn lex_prefixed_literal(cur: &mut Cursor<'_>, toks: &mut Vec<Tok>, line: u32) {
    let first = cur.bump().unwrap_or(0);
    if first == b'b' && cur.peek(0) == Some(b'\'') {
        cur.bump();
        lex_quoted(cur, b'\'');
        toks.push(tok(TokKind::Char, "", line));
        return;
    }
    if first == b'b' && cur.peek(0) == Some(b'r') {
        cur.bump();
    }
    // Now at `#`* `"` (raw string) or `"` (byte string), unless this was a
    // raw identifier `r#ident`.
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some(b'#') {
        hashes += 1;
    }
    match cur.peek(hashes) {
        Some(b'"') => {
            for _ in 0..=hashes {
                cur.bump();
            }
            if hashes == 0 && first == b'r' {
                // `r"…"` has no hash guard but also no escapes.
                while let Some(c) = cur.bump() {
                    if c == b'"' {
                        break;
                    }
                }
            } else if hashes == 0 {
                // `b"…"` supports escapes.
                lex_quoted(cur, b'"');
            } else {
                // Raw: scan for `"` followed by `hashes` hashes.
                'scan: while let Some(c) = cur.bump() {
                    if c == b'"' {
                        for i in 0..hashes {
                            if cur.peek(i) != Some(b'#') {
                                continue 'scan;
                            }
                        }
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                }
            }
            toks.push(tok(TokKind::Str, "", line));
        }
        _ if first == b'r' && hashes == 1 && cur.peek(1).is_some_and(is_ident_start) => {
            // Raw identifier `r#type`.
            cur.bump(); // '#'
            let start = cur.pos;
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            let text = std::str::from_utf8(&cur.src[start..cur.pos])
                .unwrap_or("")
                .to_string();
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
        }
        _ => {
            // Plain ident that happened to start with `r`/`b` — re-lex the
            // rest of the ident and splice the already-consumed prefix back.
            let start = cur.pos - 1;
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            let text = std::str::from_utf8(&cur.src[start..cur.pos])
                .unwrap_or("")
                .to_string();
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
        }
    }
}

/// Consume a quoted body up to an unescaped `close`. The opening quote must
/// already be consumed.
fn lex_quoted(cur: &mut Cursor<'_>, close: u8) {
    while let Some(c) = cur.bump() {
        if c == b'\\' {
            cur.bump();
        } else if c == close {
            break;
        }
    }
}

/// `'` is ambiguous: char literal or lifetime. Heuristic (same one rustc's
/// lexer uses): `'X'` where the char after the first payload char is `'` is a
/// char literal; `'ident` otherwise is a lifetime; `'\…'` is always a char.
fn lex_quote(cur: &mut Cursor<'_>, src: &str, toks: &mut Vec<Tok>, line: u32) {
    cur.bump(); // opening '
    match cur.peek(0) {
        Some(b'\\') => {
            cur.bump();
            lex_quoted(cur, b'\'');
            toks.push(tok(TokKind::Char, "", line));
        }
        Some(c) if is_ident_start(c) && cur.peek(1) != Some(b'\'') => {
            let start = cur.pos;
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            toks.push(tok(TokKind::Lifetime, &src[start..cur.pos], line));
        }
        Some(_) => {
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            toks.push(tok(TokKind::Char, "", line));
        }
        None => toks.push(tok(TokKind::Punct, "'", line)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_code() {
        let toks = kinds("// unwrap()\nfn f() {}\n/* panic! /* nested */ still */");
        assert_eq!(toks[0], (TokKind::Comment, "// unwrap()".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert!(matches!(toks.last(), Some((TokKind::Comment, t)) if t.ends_with("still */")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn strings_hide_code() {
        for src in [
            r#"let s = "unwrap()";"#,
            r##"let s = r#"unwrap() " quote"#;"##,
            r#"let s = b"unwrap()";"#,
            r#"let s = "esc \" unwrap()";"#,
        ] {
            let toks = kinds(src);
            assert!(
                !toks
                    .iter()
                    .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"),
                "leaked ident out of literal in {src:?}"
            );
            assert!(
                toks.iter().any(|(k, _)| *k == TokKind::Str),
                "no Str in {src:?}"
            );
        }
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'x'; fn f<'a>(v: &'a str) -> &'static str { v }");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "static"));
        // Escaped char with a quote payload.
        let toks = kinds(r"let q = '\'';");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn raw_idents_and_numbers() {
        let toks = kinds("let r#type = 0x81; let x = 1_000.5e-3; for i in 0..10 {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "type"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0x81"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "1_000.5e-3"));
        // `0..10` must stay two numbers, not one float.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
