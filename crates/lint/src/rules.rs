//! The rule engine: ~a dozen named invariants checked over lexed token
//! streams, plus the `// ldp-lint: …` annotation grammar.
//!
//! Rules are heuristic by design — this is a lexer-level tool, not a type
//! checker — but every heuristic errs toward *reporting*, and the annotation
//! grammar exists precisely so a human can discharge a finding with a written
//! reason that the `unused-allow` rule then keeps honest.

use crate::lexer::{Tok, TokKind};
use crate::{FileLex, Finding};

/// The rule catalog: `(name, summary)`. DESIGN.md §9 carries the rationale.
pub const RULES: &[(&str, &str)] = &[
    ("wall-clock", "no SystemTime::now / Instant::now / thread::sleep in deterministic crates"),
    ("entropy-rng", "no entropy-seeded RNG (thread_rng, from_entropy, OsRng, …) in deterministic crates"),
    ("unordered-iter", "no HashMap/HashSet iteration in deterministic or collector code unless annotated"),
    ("panic-path", "no panic site (unwrap/expect/panic!/unchecked indexing) reachable from a daemon entry point"),
    ("hot-path-lock", "no lock acquisition inside or called from ldp-lint: hot-path(begin/end) regions"),
    ("hot-path-ordering", "no non-Relaxed atomic ordering (SeqCst/Acquire/Release/AcqRel) inside hot-path regions"),
    ("lock-order", "no acquisition against the global registry → slot → shard lock order, across calls"),
    ("opcode-arm", "every wire frame opcode must be referenced by collector non-test code"),
    ("opcode-proptest", "every wire frame opcode must be exercised by a proptest file"),
    ("alloc-cap", "every allocation in a decode/read path must follow a length cap or proof"),
    ("ack-before-durable", "no ACK/SUMMARY reply staged before the journal append in durable frame paths"),
    ("allow-without-reason", "allow annotations must carry `-- reason`"),
    ("unused-allow", "allow annotations that suppress nothing are errors"),
    ("annotation-syntax", "malformed ldp-lint annotations and unbalanced hot-path regions"),
];

/// Crates whose `src/` trees must be bit-deterministic: estimators, attacks,
/// defenses and scenario replay all promise identical output for identical
/// seeds. `crates/collector` and `crates/obs` are deliberately absent —
/// the scoped carve-out of DESIGN.md §10: stall timeouts, latency
/// histograms, and trace-ring timestamps are *observational* wall-clock
/// reads that never feed a modelled value.
const DETERMINISTIC_PREFIXES: &[&str] = &[
    "crates/graph/src/",
    "crates/mechanisms/src/",
    "crates/protocols/src/",
    "crates/core/src/",
    "crates/defense/src/",
];

/// Files holding length-prefixed decoders that must cap before allocating.
const ALLOC_CAP_FILES: &[&str] = &[
    "crates/protocols/src/wire.rs",
    "crates/collector/src/checkpoint.rs",
];

const WIRE_FILE: &str = "crates/protocols/src/wire.rs";

fn is_deterministic(rel: &str) -> bool {
    DETERMINISTIC_PREFIXES.iter().any(|p| rel.starts_with(p))
}

fn is_collector_src(rel: &str) -> bool {
    rel.starts_with("crates/collector/src/")
}

fn is_proptest_file(rel: &str) -> bool {
    rel.contains("/tests/")
        && rel
            .rsplit('/')
            .next()
            .is_some_and(|f| f.starts_with("proptest"))
}

fn rule_exists(name: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == name)
}

/// A finding before suppression: carries what the allow-matcher needs plus
/// the interprocedural witness path (empty for token-level rules).
pub(crate) struct Raw {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
    pub call_path: Vec<crate::Hop>,
}

struct Allow {
    rule: String,
    /// Line of the annotation comment itself (reported on misuse).
    line: u32,
    /// Line the annotation governs: the next non-comment code line, so an
    /// annotation may span several comment lines of justification.
    applies: u32,
    has_reason: bool,
    used: bool,
}

#[derive(Default)]
struct Annotations {
    allows: Vec<Allow>,
    /// Inclusive line ranges of `hot-path(begin)` … `hot-path(end)`.
    regions: Vec<(u32, u32)>,
    /// `annotation-syntax` / `allow-without-reason` findings (not
    /// suppressible — an allow cannot excuse a malformed allow).
    meta: Vec<Raw>,
}

/// Run every rule over the lexed workspace: per-file token rules first, then
/// the interprocedural passes over the symbol table and call graph, then
/// allow-suppression per file.
pub(crate) fn run(files: &[FileLex]) -> Vec<Finding> {
    // Cross-file reference sets for the wire-totality rules.
    let mut collector_idents: Vec<&str> = Vec::new();
    let mut proptest_idents: Vec<&str> = Vec::new();
    for f in files {
        if is_collector_src(&f.rel) {
            for (i, t) in f.toks.iter().enumerate() {
                if t.kind == TokKind::Ident && !f.test_mask[i] {
                    collector_idents.push(&t.text);
                }
            }
        }
        if is_proptest_file(&f.rel) {
            for t in &f.toks {
                if t.kind == TokKind::Ident {
                    proptest_idents.push(&t.text);
                }
            }
        }
    }

    let mut anns: Vec<Annotations> = files.iter().map(parse_annotations).collect();

    // Per-file token rules.
    let mut raws: Vec<Vec<Raw>> = files
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let mut out: Vec<Raw> = Vec::new();
            if is_deterministic(&f.rel) {
                wall_clock(f, &mut out);
                entropy_rng(f, &mut out);
            }
            if is_deterministic(&f.rel) || is_collector_src(&f.rel) {
                unordered_iter(f, &mut out);
            }
            if ALLOC_CAP_FILES.contains(&f.rel.as_str()) {
                alloc_cap(f, &mut out);
            }
            if is_collector_src(&f.rel) {
                ack_before_durable(f, &mut out);
            }
            hot_path_lock(f, &anns[fi].regions, &mut out);
            hot_path_ordering(f, &anns[fi].regions, &mut out);
            if f.rel == WIRE_FILE {
                opcode_totality(f, &collector_idents, &proptest_idents, &mut out);
            }
            out
        })
        .collect();

    // Interprocedural passes: symbol table → call graph → reachability.
    let sym = crate::symbols::build(files);
    let graph = crate::callgraph::build(files, &sym);
    let locks = crate::reach::lock_closures(files, &sym, &graph);
    let regions: Vec<Vec<(u32, u32)>> = anns.iter().map(|a| a.regions.clone()).collect();
    let inter = crate::reach::panic_paths(files, &sym, &graph)
        .into_iter()
        .chain(crate::reach::lock_order_global(files, &sym, &graph, &locks))
        .chain(crate::reach::hot_path_transitive(
            files, &sym, &graph, &locks, &regions,
        ));
    for (fi, raw) in inter {
        raws[fi].push(raw);
    }

    // Suppression: an allow with a reason discharges findings of its rule
    // on its own line or the line directly below (for interprocedural rules,
    // the line of the offending *site*).
    let mut findings = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let ann = &mut anns[fi];
        let mut file_raws = std::mem::take(&mut raws[fi]);
        file_raws.retain(|raw| {
            for a in ann.allows.iter_mut() {
                if a.has_reason
                    && a.rule == raw.rule
                    && (a.line == raw.line || a.applies == raw.line)
                {
                    a.used = true;
                    return false;
                }
            }
            true
        });

        for a in &ann.allows {
            if a.has_reason && !a.used {
                ann.meta.push(Raw {
                    rule: "unused-allow",
                    line: a.line,
                    message: format!("allow({}) suppresses nothing; remove it", a.rule),
                    call_path: Vec::new(),
                });
            }
        }

        for raw in file_raws.into_iter().chain(ann.meta.drain(..)) {
            findings.push(Finding {
                rule: raw.rule,
                rel: f.rel.clone(),
                line: raw.line,
                message: raw.message,
                call_path: raw.call_path,
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Annotation grammar
// ---------------------------------------------------------------------------

fn parse_annotations(f: &FileLex) -> Annotations {
    let mut ann = Annotations::default();
    let mut open_region: Option<u32> = None;
    for (idx, t) in f.toks.iter().enumerate() {
        if t.kind != TokKind::Comment || !t.text.starts_with("//") {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(directive) = body.strip_prefix("ldp-lint:") else {
            continue;
        };
        let directive = directive.trim();
        let (head, reason) = match directive.split_once("--") {
            Some((h, r)) => (h.trim(), Some(r.trim())),
            None => (directive, None),
        };
        match head {
            _ if head.starts_with("allow(") && head.ends_with(')') => {
                let rule = head["allow(".len()..head.len() - 1].trim().to_string();
                if !rule_exists(&rule) {
                    ann.meta.push(Raw {
                        call_path: Vec::new(),
                        rule: "annotation-syntax",
                        line: t.line,
                        message: format!("allow names unknown rule `{rule}`"),
                    });
                    continue;
                }
                let has_reason = reason.is_some_and(|r| !r.is_empty());
                if !has_reason {
                    ann.meta.push(Raw {
                        call_path: Vec::new(),
                        rule: "allow-without-reason",
                        line: t.line,
                        message: format!("allow({rule}) is missing `-- reason`"),
                    });
                }
                // The annotation governs the next non-comment line, so the
                // justification may continue over further comment lines.
                let applies = f.toks[idx + 1..]
                    .iter()
                    .find(|n| n.kind != TokKind::Comment)
                    .map_or(t.line + 1, |n| n.line);
                // A reasonless allow is recorded but suppresses nothing.
                ann.allows.push(Allow {
                    rule,
                    line: t.line,
                    applies,
                    has_reason,
                    used: false,
                });
            }
            "hot-path(begin)" => {
                if let Some(start) = open_region {
                    ann.meta.push(Raw {
                        call_path: Vec::new(),
                        rule: "annotation-syntax",
                        line: t.line,
                        message: format!(
                            "hot-path(begin) while region from line {start} is still open"
                        ),
                    });
                }
                open_region = Some(t.line);
            }
            "hot-path(end)" => match open_region.take() {
                Some(start) => ann.regions.push((start, t.line)),
                None => ann.meta.push(Raw {
                    call_path: Vec::new(),
                    rule: "annotation-syntax",
                    line: t.line,
                    message: "hot-path(end) without a matching begin".to_string(),
                }),
            },
            _ => ann.meta.push(Raw {
                call_path: Vec::new(),
                rule: "annotation-syntax",
                line: t.line,
                message: format!("unknown ldp-lint directive `{directive}`"),
            }),
        }
    }
    if let Some(start) = open_region {
        ann.meta.push(Raw {
            call_path: Vec::new(),
            rule: "annotation-syntax",
            line: start,
            message: "hot-path(begin) is never closed".to_string(),
        });
    }
    ann
}

// ---------------------------------------------------------------------------
// #[cfg(test)] masking
// ---------------------------------------------------------------------------

/// Mark every token belonging to a `#[cfg(test)]` or `#[test]` item
/// (attribute included). The item is the next `;`-terminated statement or
/// balanced `{…}` block after the attribute stack.
pub(crate) fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let (end, is_test) = scan_attr(toks, i);
            if is_test {
                let start = i;
                let mut j = end;
                // Skip any further attributes on the same item.
                while j < toks.len()
                    && toks[j].is_punct('#')
                    && j + 1 < toks.len()
                    && toks[j + 1].is_punct('[')
                {
                    j = scan_attr(toks, j).0;
                }
                // Consume the item: to the first `;` at depth 0, or to the
                // `}` closing the first brace block.
                let mut depth = 0i32;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    } else if t.is_punct(';') && depth == 0 {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j).skip(start) {
                    *m = true;
                }
                i = j;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scan an attribute starting at `#`; return (index past `]`, is-test-attr).
fn scan_attr(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut j = start + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if t.kind == TokKind::Ident {
            if t.text == "cfg" {
                saw_cfg = true;
            }
            if t.text == "test" && (saw_cfg || j == start + 2) {
                // `#[cfg(test)]`, `#[cfg(any(test, …))]`, or bare `#[test]`.
                is_test = true;
            }
        }
        j += 1;
    }
    (j, is_test)
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

fn wall_clock(f: &FileLex, out: &mut Vec<Raw>) {
    for (i, t) in f.toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "now" => path_prefix_is(&f.toks, i, &["Instant", "SystemTime"]),
            "sleep" => path_prefix_is(&f.toks, i, &["thread"]),
            "elapsed" => false,
            _ => false,
        };
        if flagged {
            let root = path_root(&f.toks, i);
            out.push(Raw {
                call_path: Vec::new(),
                rule: "wall-clock",
                line: t.line,
                message: format!(
                    "wall-clock call `{root}::{}` in a deterministic crate",
                    t.text
                ),
            });
        }
    }
}

fn entropy_rng(f: &FileLex, out: &mut Vec<Raw>) {
    const ENTROPY: &[&str] = &[
        "thread_rng",
        "from_entropy",
        "OsRng",
        "getrandom",
        "ThreadRng",
    ];
    for (i, t) in f.toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let flagged = ENTROPY.contains(&t.text.as_str())
            || (t.text == "random" && path_prefix_is(&f.toks, i, &["rand"]));
        if flagged {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "entropy-rng",
                line: t.line,
                message: format!(
                    "entropy-seeded RNG `{}` in a deterministic crate; derive from the scenario seed",
                    t.text
                ),
            });
        }
    }
}

/// Is token `i` preceded by `Root ::` with `Root` in `roots`?
fn path_prefix_is(toks: &[Tok], i: usize, roots: &[&str]) -> bool {
    i >= 3
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
        && toks[i - 3].kind == TokKind::Ident
        && roots.contains(&toks[i - 3].text.as_str())
}

fn path_root(toks: &[Tok], i: usize) -> &str {
    if i >= 3 {
        &toks[i - 3].text
    } else {
        ""
    }
}

/// Methods whose iteration order on HashMap/HashSet is unordered.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

fn unordered_iter(f: &FileLex, out: &mut Vec<Raw>) {
    let known = unordered_bindings(f);
    if known.is_empty() {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        // `name.iter()` / `read_lock(&self.map).keys()` — walk the postfix
        // chain backwards and see if any receiver ident is a known
        // HashMap/HashSet binding.
        if ITER_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && i > 0
            && toks[i - 1].is_punct('.')
        {
            if let Some(name) = chain_hit(toks, i - 1, &known) {
                out.push(Raw {
                    call_path: Vec::new(),
                    rule: "unordered-iter",
                    line: t.line,
                    message: format!(
                        "iteration over HashMap/HashSet `{name}` has nondeterministic order; \
                         use BTreeMap/BTreeSet, sort first, or annotate with a reason"
                    ),
                });
            }
        }
        // `for x in &name {` / `for x in name {` — a by-value or by-ref move
        // iteration with no method call to anchor on.
        if t.is_ident("for") {
            if let Some((name, line)) = for_in_known(toks, i, &known) {
                out.push(Raw {
                    call_path: Vec::new(),
                    rule: "unordered-iter",
                    line,
                    message: format!(
                        "`for … in {name}` iterates a HashMap/HashSet in nondeterministic order; \
                         use BTreeMap/BTreeSet, sort first, or annotate with a reason"
                    ),
                });
            }
        }
    }
}

/// Names bound to HashMap/HashSet in this file: `let` bindings whose
/// initializer/type mentions the type, plus `name: …HashMap…` field and
/// parameter declarations.
fn unordered_bindings(f: &FileLex) -> Vec<String> {
    let toks = &f.toks;
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Field / parameter form: walk back to the nearest `,` `{` `(` `;`
        // boundary; the declaration starts `name :` (single colon).
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is_punct(',')
                || p.is_punct('{')
                || p.is_punct('(')
                || p.is_punct(')')
                || p.is_punct(';')
                || p.is_punct('}')
            {
                break;
            }
            j -= 1;
        }
        if toks[j].kind == TokKind::Ident
            && toks.get(j + 1).is_some_and(|c| c.is_punct(':'))
            && !toks.get(j + 2).is_some_and(|c| c.is_punct(':'))
        {
            push_unique(&mut names, &toks[j].text);
        }
    }
    // `let [mut] name … = … HashMap/HashSet …;` — scan each let-statement.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name_tok) = toks.get(k).filter(|t| t.kind == TokKind::Ident) {
                let mut depth = 0i32;
                let mut j = k + 1;
                let mut mentions = false;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('{') || t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct('}') || t.is_punct(')') {
                        depth -= 1;
                    } else if t.is_punct(';') && depth <= 0 {
                        break;
                    } else if t.kind == TokKind::Ident
                        && (t.text == "HashMap" || t.text == "HashSet")
                    {
                        mentions = true;
                    }
                    j += 1;
                }
                if mentions {
                    push_unique(&mut names, &name_tok.text);
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Walk a postfix receiver chain backwards from the `.` before a method call
/// and return the first known binding mentioned in it.
fn chain_hit(toks: &[Tok], dot: usize, known: &[String]) -> Option<String> {
    let mut j = dot;
    let mut steps = 0;
    while j > 0 && steps < 24 {
        let t = &toks[j - 1];
        let chained = t.kind == TokKind::Ident
            || t.is_punct('.')
            || t.is_punct('(')
            || t.is_punct(')')
            || t.is_punct('&')
            || t.is_punct(':')
            || t.is_punct('?')
            || t.is_punct('[')
            || t.is_punct(']');
        if !chained {
            break;
        }
        if t.kind == TokKind::Ident && known.iter().any(|n| n == &t.text) {
            return Some(t.text.clone());
        }
        j -= 1;
        steps += 1;
    }
    None
}

/// Match `for … in [& [mut]] name {` with `name` a known unordered binding.
fn for_in_known(toks: &[Tok], for_idx: usize, known: &[String]) -> Option<(String, u32)> {
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    while j < toks.len() && j - for_idx < 48 {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            let mut k = j + 1;
            while toks
                .get(k)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                k += 1;
            }
            let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?;
            if toks.get(k + 1).is_some_and(|t| t.is_punct('{'))
                && known.iter().any(|n| n == &name.text)
            {
                return Some((name.text.clone(), name.line));
            }
            return None;
        } else if t.is_punct('{') {
            return None;
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Locking discipline
// ---------------------------------------------------------------------------

/// Lock-acquiring call names recognized inside hot-path regions and by the
/// interprocedural lock passes ([`crate::reach`]).
pub(crate) const LOCK_CALLS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "write",
    "try_read",
    "try_write",
    "read_lock",
    "write_lock",
];

fn hot_path_lock(f: &FileLex, regions: &[(u32, u32)], out: &mut Vec<Raw>) {
    if regions.is_empty() {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if LOCK_CALLS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && regions.iter().any(|&(a, b)| t.line > a && t.line < b)
        {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "hot-path-lock",
                line: t.line,
                message: format!(
                    "lock acquisition `{}(` inside a hot-path region; folds must run lock-free \
                     under the already-held shard lock",
                    t.text
                ),
            });
        }
    }
}

/// Atomic orderings whose fences have no place on a per-report path: a
/// metric tick inside a hot-path region must be `Ordering::Relaxed` —
/// the counters are monotone sums reconciled at a `SYNC`/`CLOSE`
/// barrier, so the stronger orderings buy nothing but pipeline stalls.
const STRONG_ORDERINGS: &[&str] = &["SeqCst", "Acquire", "Release", "AcqRel"];

fn hot_path_ordering(f: &FileLex, regions: &[(u32, u32)], out: &mut Vec<Raw>) {
    if regions.is_empty() {
        return;
    }
    for (i, t) in f.toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if STRONG_ORDERINGS.contains(&t.text.as_str())
            && regions.iter().any(|&(a, b)| t.line > a && t.line < b)
        {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "hot-path-ordering",
                line: t.line,
                message: format!(
                    "atomic ordering `{}` inside a hot-path region; per-report metric \
                     ticks must be Ordering::Relaxed",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Wire totality
// ---------------------------------------------------------------------------

/// Every `const NAME: u8 = 0x..;` inside `mod frames { … }` of wire.rs must
/// be referenced by collector non-test code (a decode arm) and exercised by a
/// proptest file.
fn opcode_totality(f: &FileLex, collector: &[&str], proptest: &[&str], out: &mut Vec<Raw>) {
    for (name, line) in frame_consts(&f.toks) {
        if !collector.iter().any(|i| *i == name) {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "opcode-arm",
                line,
                message: format!(
                    "opcode `{name}` is not referenced by collector non-test code; \
                     every frame kind needs a decode arm"
                ),
            });
        }
        if !proptest.iter().any(|i| *i == name) {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "opcode-proptest",
                line,
                message: format!("opcode `{name}` is not exercised by any proptest file"),
            });
        }
    }
}

fn frame_consts(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut consts = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.is_ident("frames")) {
            // Find the module body and scan it.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("const") {
                    if let Some(name) = toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) {
                        // Only opcode consts (hex literal initializer).
                        let hex = toks[j..toks.len().min(j + 10)]
                            .iter()
                            .take_while(|t| !t.is_punct(';'))
                            .any(|t| t.kind == TokKind::Num && t.text.starts_with("0x"));
                        if hex {
                            consts.push((name.text.clone(), name.line));
                        }
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    consts
}

// ---------------------------------------------------------------------------
// Allocation caps in decode paths
// ---------------------------------------------------------------------------

/// Reply-staging frame constants: an occurrence of one of these in a
/// durable path before any journal append is the write-ahead inversion.
const REPLY_IDENTS: &[&str] = &["ACK", "SUMMARY", "DEGREE_SUMMARY", "VIEW"];

/// The write-ahead ordering of DESIGN.md §11: in a durable frame path
/// (any collector function whose name contains `durable`), the journal
/// append must come before any reply constant is staged. A crash between
/// an early `ACK` and a late append would acknowledge a report the
/// journal never saw — exactly the loss the WAL exists to rule out.
///
/// Token-level heuristic: within such a function, flag any
/// [`REPLY_IDENTS`] identifier seen before the first identifier
/// containing `append`. Linear token order over-approximates control
/// flow (a reply-first match arm after an append-bearing arm is
/// missed; an append behind an `if` is trusted), but the real daemon
/// funnels every state-changing frame through one function where the
/// textual order *is* the execution order, and the annotation grammar
/// can discharge deliberate exceptions.
fn ack_before_durable(f: &FileLex, out: &mut Vec<Raw>) {
    let toks = &f.toks;
    // (name, open depth, seen a journal append) — same fn-stack walk as
    // `alloc_cap`.
    let mut stack: Vec<(String, i32, bool)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                stack.push((name, depth, false));
            }
            continue;
        }
        if t.is_punct('}') {
            if let Some(&(_, d, _)) = stack.last() {
                if d == depth {
                    stack.pop();
                }
            }
            depth -= 1;
            continue;
        }
        if t.is_punct(';') && pending_fn.is_some() && depth == 0 {
            pending_fn = None; // trait method declaration without body
            continue;
        }
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "fn" {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                pending_fn = Some(name.text.clone());
            }
            continue;
        }
        let Some(top) = stack.last_mut() else {
            continue;
        };
        if !top.0.contains("durable") {
            continue;
        }
        if t.text.contains("append") {
            top.2 = true;
            continue;
        }
        if REPLY_IDENTS.contains(&t.text.as_str()) && !top.2 {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "ack-before-durable",
                line: t.line,
                message: format!(
                    "reply `{}` staged in durable path `{}` before any journal append; \
                     a crash here acknowledges a report the journal never saw",
                    t.text, top.0
                ),
            });
        }
    }
}

/// Function-name prefixes that mark untrusted-input decode paths.
const DECODE_FN_PREFIXES: &[&str] = &["decode", "read", "get", "resume", "parse"];

/// Allocation calls that must be preceded (in the same function) by a length
/// proof: a `MAX_*` constant, `checked_len`, `split_at_checked`, or a
/// `len()` comparison.
fn alloc_cap(f: &FileLex, out: &mut Vec<Raw>) {
    const ALLOCS: &[&str] = &["with_capacity", "resize", "reserve"];
    let toks = &f.toks;
    // Track enclosing named functions via a (name, depth) stack.
    let mut stack: Vec<(String, i32, bool)> = Vec::new(); // (name, open depth, has proof)
    let mut pending_fn: Option<String> = None;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                stack.push((name, depth, false));
            }
            continue;
        }
        if t.is_punct('}') {
            if let Some(&(_, d, _)) = stack.last() {
                if d == depth {
                    stack.pop();
                }
            }
            depth -= 1;
            continue;
        }
        if t.is_punct(';') && pending_fn.is_some() && depth == 0 {
            pending_fn = None; // trait method declaration without body
            continue;
        }
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "fn" {
            if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                pending_fn = Some(name.text.clone());
            }
            continue;
        }
        let in_decode_fn = stack
            .last()
            .map(|(name, _, _)| DECODE_FN_PREFIXES.iter().any(|p| name.starts_with(p)))
            .unwrap_or(false);
        // Record proofs on every enclosing frame.
        let is_proof = t.text.starts_with("MAX_")
            || t.text == "checked_len"
            || t.text == "split_at_checked"
            || (t.text == "len"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
                && toks.get(i + 3).is_some_and(|n| {
                    n.is_punct('<') || n.is_punct('>') || n.is_punct('=') || n.is_punct('!')
                }));
        if is_proof {
            if let Some(top) = stack.last_mut() {
                top.2 = true;
            }
            continue;
        }
        if !in_decode_fn {
            continue;
        }
        let proved = stack.last().map(|&(_, _, p)| p).unwrap_or(false);
        let is_alloc = (ALLOCS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('(')))
            || (t.text == "vec" && toks.get(i + 1).is_some_and(|n| n.is_punct('!')));
        if is_alloc && !proved {
            out.push(Raw {
                call_path: Vec::new(),
                rule: "alloc-cap",
                line: t.line,
                message: format!(
                    "allocation `{}` in decode path `{}` before any length cap \
                     (MAX_* bound, checked_len, or len() comparison)",
                    t.text,
                    stack.last().map(|(n, _, _)| n.as_str()).unwrap_or("?")
                ),
            });
        }
    }
}
