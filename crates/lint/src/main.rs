//! `ldp-lint` CLI.
//!
//! ```text
//! ldp-lint --workspace            # lint the enclosing cargo workspace
//! ldp-lint --root PATH            # lint an explicit tree (fixtures, CI)
//! ldp-lint --list-rules           # print the rule catalog
//! ```
//!
//! Exit status: 0 when clean, 1 when findings exist, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => match workspace_root() {
                Some(dir) => root = Some(dir),
                None => {
                    eprintln!("ldp-lint: no enclosing cargo workspace found");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ldp-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, summary) in ldp_lint::rules::RULES {
                    println!("{name:22} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ldp-lint: unknown argument `{other}`");
                eprintln!("usage: ldp-lint [--workspace | --root PATH | --list-rules]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("usage: ldp-lint [--workspace | --root PATH | --list-rules]");
        return ExitCode::from(2);
    };

    match ldp_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "ldp-lint: clean ({} rules enforced)",
                ldp_lint::rules::RULES.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("ldp-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("ldp-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Ascend from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
