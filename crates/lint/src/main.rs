//! `ldp-lint` CLI.
//!
//! ```text
//! ldp-lint --workspace            # lint the enclosing cargo workspace
//! ldp-lint --root PATH            # lint an explicit tree (fixtures, CI)
//! ldp-lint --list-rules           # print the rule catalog
//! ldp-lint --workspace --explain  # render witness call paths per finding
//! ldp-lint --workspace --format json   # machine-readable output
//! ldp-lint --workspace --timing   # per-phase wall-clock to stderr
//! ```
//!
//! Exit status: 0 when clean, 1 when findings exist, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: ldp-lint [--workspace | --root PATH | --list-rules] [--explain] [--format json] [--timing]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut explain = false;
    let mut json = false;
    let mut timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => match workspace_root() {
                Some(dir) => root = Some(dir),
                None => {
                    eprintln!("ldp-lint: no enclosing cargo workspace found");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ldp-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, summary) in ldp_lint::rules::RULES {
                    println!("{name:22} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => explain = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some(other) => {
                    eprintln!("ldp-lint: unknown format `{other}` (supported: json)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("ldp-lint: --format requires a value (supported: json)");
                    return ExitCode::from(2);
                }
            },
            "--timing" => timing = true,
            other => {
                eprintln!("ldp-lint: unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    match ldp_lint::lint_workspace_timed(&root) {
        Ok((findings, t)) => {
            if timing {
                eprintln!(
                    "ldp-lint: timing: {} files, lex {:.1?} (parallel), analyze {:.1?}",
                    t.files, t.lex, t.analyze
                );
            }
            if json {
                print!("{}", ldp_lint::to_json(&findings));
            } else if findings.is_empty() {
                println!(
                    "ldp-lint: clean ({} rules enforced)",
                    ldp_lint::rules::RULES.len()
                );
            } else {
                for f in &findings {
                    if explain {
                        println!("{}", f.explain());
                    } else {
                        println!("{f}");
                    }
                }
                println!("ldp-lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ldp-lint: {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Ascend from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
