//! The server-side aggregate of all uploaded reports.

use crate::report::AdjacencyReport;
use ldp_graph::{BitMatrix, NodeId};
use ldp_mechanisms::RandomizedResponse;

/// The perturbed graph the server reconstructs from `N` reports, plus the
/// reported-degree vector.
///
/// Slot ownership: the undirected slot `{i, j}` with `i > j` is taken from
/// report `i` (lower-triangle authority), so each slot is perturbed exactly
/// once — see the crate docs.
#[derive(Debug, Clone)]
pub struct PerturbedView {
    matrix: BitMatrix,
    reported_degrees: Vec<f64>,
    perturbed_degrees: Vec<usize>,
    /// `Σd̃_i`, cached at construction so [`Self::edge_density`] and
    /// [`Self::average_perturbed_degree`] — called per estimate and per
    /// `calibration_threads` sizing — are O(1) instead of an O(N) sum.
    sum_perturbed_degrees: u64,
    rr: RandomizedResponse,
}

impl PerturbedView {
    /// Builds the view from one report per user.
    ///
    /// This is a thin wrapper over the streaming path
    /// ([`crate::ingest::StreamingAggregator`]) with the whole input as a
    /// single batch, so it inherits the parallel lower-triangle fold and
    /// the bounded per-report bit scan. Callers that can produce reports
    /// lazily should stream batches instead to keep report memory bounded.
    ///
    /// # Panics
    /// Panics if the number of reports differs from the population size
    /// they claim, or if reports disagree on the population size.
    pub fn from_reports(reports: &[AdjacencyReport], rr: RandomizedResponse) -> Self {
        let mut agg = crate::ingest::StreamingAggregator::new(reports.len(), rr);
        agg.ingest_batch(reports);
        agg.finalize()
    }

    /// Assembles a view from already-aggregated parts; reserved for the
    /// ingestion engine, which upholds the invariants (symmetric matrix,
    /// degree vectors of length `N` consistent with it).
    pub(crate) fn from_parts(
        matrix: BitMatrix,
        reported_degrees: Vec<f64>,
        perturbed_degrees: Vec<usize>,
        rr: RandomizedResponse,
    ) -> Self {
        debug_assert_eq!(matrix.num_nodes(), reported_degrees.len());
        debug_assert_eq!(matrix.num_nodes(), perturbed_degrees.len());
        let sum_perturbed_degrees = perturbed_degrees.iter().map(|&d| d as u64).sum();
        PerturbedView {
            matrix,
            reported_degrees,
            perturbed_degrees,
            sum_perturbed_degrees,
            rr,
        }
    }

    /// Population size `N`.
    pub fn num_users(&self) -> usize {
        self.reported_degrees.len()
    }

    /// The symmetrized perturbed adjacency matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.matrix
    }

    /// The randomized-response mechanism the view assumes for calibration.
    pub fn rr(&self) -> RandomizedResponse {
        self.rr
    }

    /// Node `i`'s degree in the perturbed graph (row popcount) — `d̃_i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn perturbed_degree(&self, i: NodeId) -> usize {
        assert!(i < self.num_users(), "node {i} out of range");
        self.perturbed_degrees[i]
    }

    /// Node `i`'s self-reported (Laplace) degree.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn reported_degree(&self, i: NodeId) -> f64 {
        assert!(i < self.num_users(), "node {i} out of range");
        self.reported_degrees[i]
    }

    /// All reported degrees.
    pub fn reported_degrees(&self) -> &[f64] {
        &self.reported_degrees
    }

    /// Average perturbed degree `d̃` over all users. O(1): the degree sum
    /// is cached at construction.
    pub fn average_perturbed_degree(&self) -> f64 {
        if self.num_users() == 0 {
            return 0.0;
        }
        self.sum_perturbed_degrees as f64 / self.num_users() as f64
    }

    /// Edge density `θ̃` of the perturbed graph: `Σd̃_i / (N(N−1))`. O(1):
    /// the degree sum is cached at construction.
    ///
    /// (Paper Eq. 17 writes the numerator with τ̃; the quantity it names —
    /// "edge density of the perturbed graph" — is this one. See DESIGN.md.)
    pub fn edge_density(&self) -> f64 {
        let n = self.num_users() as f64;
        if n < 2.0 {
            return 0.0;
        }
        self.sum_perturbed_degrees as f64 / (n * (n - 1.0))
    }

    /// The degree-centrality estimate the paper's degree attacks target:
    /// `c̃_i = d̃_i / (N − 1)` on the perturbed graph (Theorem 1 operates on
    /// exactly this uncalibrated quantity).
    pub fn degree_centrality(&self, i: NodeId) -> f64 {
        let n = self.num_users();
        if n < 2 {
            return 0.0;
        }
        self.perturbed_degrees[i] as f64 / (n as f64 - 1.0)
    }

    /// RR-calibrated (unbiased) degree estimate from the adjacency channel:
    /// `(d̃_i − (N−1)(1−p)) / (2p−1)`.
    pub fn calibrated_degree(&self, i: NodeId) -> f64 {
        let n = self.num_users() as f64;
        self.rr
            .calibrate_count(self.perturbed_degrees[i] as f64, n - 1.0)
    }

    /// Calibrated degree-centrality estimate (ablation: shows the attack
    /// also moves the unbiased estimator, scaled by `1/(2p−1)`).
    pub fn calibrated_degree_centrality(&self, i: NodeId) -> f64 {
        let n = self.num_users();
        if n < 2 {
            return 0.0;
        }
        self.calibrated_degree(i) / (n as f64 - 1.0)
    }

    /// Number of triangles incident to `i` in the perturbed graph — `τ̃_i`.
    pub fn perturbed_triangles(&self, i: NodeId) -> u64 {
        self.matrix.triangles_at(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::BitSet;

    fn rr09() -> RandomizedResponse {
        RandomizedResponse::from_keep_probability(0.9).unwrap()
    }

    /// Hand-built population of 4 users where user i's bits are given
    /// explicitly (only lower-triangle bits count).
    fn view_from_rows(rows: Vec<Vec<usize>>, degrees: Vec<f64>) -> PerturbedView {
        let n = rows.len();
        let reports: Vec<AdjacencyReport> = rows
            .into_iter()
            .zip(degrees)
            .map(|(ones, d)| AdjacencyReport::new(BitSet::from_indices(n, ones), d))
            .collect();
        PerturbedView::from_reports(&reports, rr09())
    }

    #[test]
    fn lower_triangle_ownership() {
        // User 0 claims an edge to 3 (ignored: 3 > 0); user 3 claims edges
        // to 0 and 1 (authoritative).
        let view = view_from_rows(
            vec![vec![3], vec![], vec![], vec![0, 1]],
            vec![0.0, 0.0, 0.0, 2.0],
        );
        assert!(view.matrix().has_edge(3, 0));
        assert!(view.matrix().has_edge(3, 1));
        assert!(!view.matrix().has_edge(0, 3) || view.matrix().has_edge(3, 0));
        assert_eq!(view.matrix().num_edges(), 2);
        assert_eq!(view.perturbed_degree(3), 2);
        assert_eq!(view.perturbed_degree(2), 0);
    }

    #[test]
    fn degree_centrality_uses_perturbed_degree() {
        let view = view_from_rows(vec![vec![], vec![0], vec![0, 1], vec![]], vec![0.0; 4]);
        // Node 0 has perturbed degree 2 (claimed by 1 and 2).
        assert_eq!(view.perturbed_degree(0), 2);
        assert!((view.degree_centrality(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_reverses_rr_bias_in_expectation() {
        let rr = rr09();
        // Perturbed degree exactly at its expectation for true degree 5 of 99 slots.
        let expected = rr.expected_observed(5.0, 99.0);
        let calibrated = rr.calibrate_count(expected, 99.0);
        assert!((calibrated - 5.0).abs() < 1e-9);
    }

    #[test]
    fn density_and_average_degree() {
        let view = view_from_rows(vec![vec![], vec![0], vec![1], vec![2]], vec![0.0; 4]);
        // 3 edges in a path; Σd̃ = 6.
        assert!((view.average_perturbed_degree() - 1.5).abs() < 1e-12);
        assert!((view.edge_density() - 6.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn perturbed_triangles_counts_matrix_triangles() {
        let view = view_from_rows(vec![vec![], vec![0], vec![0, 1], vec![]], vec![0.0; 4]);
        assert_eq!(view.perturbed_triangles(0), 1);
        assert_eq!(view.perturbed_triangles(3), 0);
    }

    #[test]
    #[should_panic(expected = "spans")]
    fn population_mismatch_panics() {
        let reports = vec![
            AdjacencyReport::new(BitSet::new(3), 0.0),
            AdjacencyReport::new(BitSet::new(4), 0.0),
            AdjacencyReport::new(BitSet::new(3), 0.0),
        ];
        PerturbedView::from_reports(&reports, rr09());
    }
}
