//! Triangle-count calibration `R(·)` and the clustering-coefficient
//! estimator (paper Eq. 15–19).
//!
//! The server counts `τ̃_i` triangles at node `i` in the perturbed graph.
//! Its expectation decomposes over the three cases of paper Fig. 4
//! (both/one/neither co-members are true neighbors):
//!
//! ```text
//! E[τ̃] = τ·p³ + (½d(d−1) − τ)·p²(1−p)            // case 1
//!       + d(N−d−1)·p(1−p)·θ̃                       // case 2
//!       + ½(N−d−1)(N−d−2)·(1−p)²·θ̃                // case 3
//!       = τ·p²(2p−1) + bias(d, N, p, θ̃)
//! ```
//!
//! so `R(τ̃) = (τ̃ − bias)/(p²(2p−1))` is the unbiased inverse — Eq. 16.

use super::view::PerturbedView;
use ldp_graph::metrics::clustering::clustering_from_parts;
use ldp_graph::runtime::{default_threads, parallel_map, threads_for_work};

/// Worker count for calibrating `targets` nodes of `view`: each target's
/// triangle count scans its `d̃` neighbor rows of `⌈N/64⌉` words, so the
/// job is `targets · d̃ · N/64` word ops (the shared runtime threshold
/// decides when that amortizes a thread scope).
fn calibration_threads(view: &PerturbedView, targets: usize) -> usize {
    let words_per_row = view.num_users().div_ceil(64).max(1);
    let work = (view.average_perturbed_degree() * targets as f64) as usize * words_per_row;
    threads_for_work(work, default_threads())
}

/// Applies Eq. 16: calibrates a perturbed triangle count back to an
/// unbiased estimate of the true count.
///
/// * `tau_tilde` — observed triangles at the node in the perturbed graph;
/// * `degree` — the node's degree estimate (LF-GDPR plugs in the reported
///   degree `ẽd_i`);
/// * `n` — population size `N`;
/// * `p` — RR keep probability (must exceed ½ for invertibility);
/// * `theta_tilde` — perturbed-graph edge density `θ̃` (Eq. 17).
pub fn calibrate_triangles(tau_tilde: f64, degree: f64, n: f64, p: f64, theta_tilde: f64) -> f64 {
    let q = 1.0 - p;
    let d = degree.max(0.0);
    let non_neighbors = (n - d - 1.0).max(0.0);
    let bias = 0.5 * d * (d - 1.0).max(0.0) * p * p * q
        + d * non_neighbors * p * q * theta_tilde
        + 0.5 * non_neighbors * (non_neighbors - 1.0).max(0.0) * q * q * theta_tilde;
    (tau_tilde - bias) / (p * p * (2.0 * p - 1.0))
}

/// The expected perturbed triangle count for a node with true triangle
/// count `tau`, true degree `d`, in a graph with perturbed density
/// `theta_tilde` — the forward direction of Eq. 16, exposed for tests and
/// for the analytic large-graph mode.
pub fn expected_perturbed_triangles(tau: f64, d: f64, n: f64, p: f64, theta_tilde: f64) -> f64 {
    let q = 1.0 - p;
    let non_neighbors = (n - d - 1.0).max(0.0);
    tau * p.powi(3)
        + (0.5 * d * (d - 1.0).max(0.0) - tau) * p * p * q
        + d * non_neighbors * p * q * theta_tilde
        + 0.5 * non_neighbors * (non_neighbors - 1.0).max(0.0) * q * q * theta_tilde
}

/// Which degree the estimator plugs into Eq. 15–16 as `ẽd_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeSource {
    /// The node's degree in the perturbed graph (row popcount). This is
    /// what the paper's Eq. 15 and Theorem 2 normalize by ("the perturbed
    /// degree"), so it is the default for reproduction.
    #[default]
    PerturbedRow,
    /// The Laplace-reported degree — LF-GDPR's own (better-calibrated)
    /// choice; exposed as an ablation.
    Reported,
}

fn degree_of(view: &PerturbedView, i: usize, source: DegreeSource) -> f64 {
    match source {
        DegreeSource::PerturbedRow => view.perturbed_degree(i) as f64,
        DegreeSource::Reported => view.reported_degree(i),
    }
}

/// The per-node output of the clustering-coefficient estimator.
#[derive(Debug, Clone)]
pub struct ClusteringEstimate {
    /// Estimated local clustering coefficient per node (Eq. 15).
    pub cc: Vec<f64>,
    /// Calibrated triangle counts `R(τ̃_i)` per node (Eq. 16).
    pub calibrated_triangles: Vec<f64>,
    /// The perturbed edge density `θ̃` used in the calibration.
    pub theta_tilde: f64,
}

/// Runs the full LF-GDPR clustering-coefficient estimation over a view:
/// `cc_i = 2·R(τ̃_i) / (ẽd_i(ẽd_i − 1))`, with `ẽd_i` chosen by `source`.
///
/// Per-node triangle counting dominates, and nodes are independent, so the
/// loop is chunk-parallelized over the shared runtime for large views;
/// results are identical at any thread count.
pub fn estimate_clustering_with(view: &PerturbedView, source: DegreeSource) -> ClusteringEstimate {
    let n = view.num_users();
    let nf = n as f64;
    let p = view.rr().p_keep();
    let theta = view.edge_density();
    let pairs = parallel_map((0..n).collect(), calibration_threads(view, n), |&i| {
        let tau_tilde = view.perturbed_triangles(i) as f64;
        let degree = degree_of(view, i, source);
        let tau = calibrate_triangles(tau_tilde, degree, nf, p, theta);
        (tau, clustering_from_parts(tau, degree))
    });
    let (taus, cc) = pairs.into_iter().unzip();
    ClusteringEstimate {
        cc,
        calibrated_triangles: taus,
        theta_tilde: theta,
    }
}

/// [`estimate_clustering_with`] at the paper-default degree source.
pub fn estimate_clustering(view: &PerturbedView) -> ClusteringEstimate {
    estimate_clustering_with(view, DegreeSource::default())
}

/// Clustering estimate restricted to chosen nodes (the attack pipeline only
/// needs targets, and triangle counting dominates the cost).
pub fn estimate_clustering_at_with(
    view: &PerturbedView,
    nodes: &[usize],
    source: DegreeSource,
) -> Vec<f64> {
    let nf = view.num_users() as f64;
    let p = view.rr().p_keep();
    let theta = view.edge_density();
    let threads = calibration_threads(view, nodes.len());
    parallel_map(nodes.to_vec(), threads, |&i| {
        let tau_tilde = view.perturbed_triangles(i) as f64;
        let degree = degree_of(view, i, source);
        let tau = calibrate_triangles(tau_tilde, degree, nf, p, theta);
        clustering_from_parts(tau, degree)
    })
}

/// [`estimate_clustering_at_with`] at the paper-default degree source.
pub fn estimate_clustering_at(view: &PerturbedView, nodes: &[usize]) -> Vec<f64> {
    estimate_clustering_at_with(view, nodes, DegreeSource::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfgdpr::LfGdpr;
    use ldp_graph::generate::caveman_graph;
    use ldp_graph::metrics::local_clustering_coefficients;
    use ldp_graph::Xoshiro256pp;

    #[test]
    fn calibration_inverts_expectation() {
        let (tau, d, n, p, theta) = (40.0, 12.0, 500.0, 0.88, 0.12);
        let tilde = expected_perturbed_triangles(tau, d, n, p, theta);
        let recovered = calibrate_triangles(tilde, d, n, p, theta);
        assert!((recovered - tau).abs() < 1e-9, "recovered {recovered}");
    }

    #[test]
    fn calibration_near_identity_when_p_near_one() {
        let tau = calibrate_triangles(100.0, 10.0, 1000.0, 0.999_999, 0.01);
        assert!((tau - 100.0).abs() < 0.1, "tau {tau}");
    }

    #[test]
    fn degenerate_degrees_do_not_produce_nan() {
        let tau = calibrate_triangles(0.0, 0.0, 10.0, 0.9, 0.0);
        assert!(tau.is_finite());
        let tau = calibrate_triangles(0.0, 9.0, 10.0, 0.9, 0.5);
        assert!(tau.is_finite());
    }

    #[test]
    fn end_to_end_clustering_estimate_tracks_truth() {
        // Caveman graph: strong clustering signal. Large ε → small noise.
        let g = caveman_graph(8, 8);
        let proto = LfGdpr::new(14.0).unwrap();
        let base = Xoshiro256pp::new(11);
        let reports = proto.collect_honest(&g, &base);
        let view = proto.aggregate(&reports);
        let est = estimate_clustering(&view);
        let truth = local_clustering_coefficients(&g);
        let n = g.num_nodes() as f64;
        let mae: f64 = est
            .cc
            .iter()
            .zip(&truth)
            .map(|(e, t)| (e - t).abs())
            .sum::<f64>()
            / n;
        assert!(mae < 0.15, "mean absolute error {mae} too large");
    }

    #[test]
    fn estimate_at_subset_matches_full() {
        let g = caveman_graph(4, 6);
        let proto = LfGdpr::new(8.0).unwrap();
        let base = Xoshiro256pp::new(13);
        let view = proto.aggregate(&proto.collect_honest(&g, &base));
        let full = estimate_clustering(&view);
        let subset = estimate_clustering_at(&view, &[0, 5, 10]);
        assert!((subset[0] - full.cc[0]).abs() < 1e-12);
        assert!((subset[1] - full.cc[5]).abs() < 1e-12);
        assert!((subset[2] - full.cc[10]).abs() < 1e-12);
    }
}
