//! Modularity estimation from a perturbed view (the second LF-GDPR metric
//! the paper evaluates, Fig. 15a).
//!
//! Given a community partition, modularity needs two ingredients per
//! community: the intra-community edge count and the total degree. Both are
//! read off the perturbed matrix and calibrated through randomized
//! response: an observed count `x̃` over `T` slots with true count `x`
//! satisfies `E[x̃] = x·p + (T − x)(1 − p)`, so
//! `x̂ = (x̃ − T(1−p))/(2p − 1)`.

use super::view::PerturbedView;

/// Estimates the modularity of `partition` from the perturbed view.
///
/// Returns 0 when the calibrated edge total is non-positive (tiny graphs
/// or extreme noise) — the metric is undefined there.
///
/// # Panics
/// Panics if `partition.len()` differs from the view's population.
pub fn estimate_modularity(view: &PerturbedView, partition: &[usize]) -> f64 {
    let n = view.num_users();
    assert_eq!(
        partition.len(),
        n,
        "partition length must equal population size"
    );
    if n < 2 {
        return 0.0;
    }
    let p = view.rr().p_keep();
    let denom = 2.0 * p - 1.0;
    let num_comms = partition.iter().copied().max().map_or(0, |c| c + 1);

    // Community sizes and observed intra-community edges.
    let mut sizes = vec![0usize; num_comms];
    for &c in partition {
        sizes[c] += 1;
    }
    let mut observed_intra = vec![0f64; num_comms];
    let matrix = view.matrix();
    for u in 0..n {
        for v in matrix.row_indices(u) {
            if u < v && partition[u] == partition[v] {
                observed_intra[partition[u]] += 1.0;
            }
        }
    }

    // Calibrated totals.
    let total_slots = n as f64 * (n as f64 - 1.0) / 2.0;
    let observed_total: f64 = (0..n).map(|u| view.perturbed_degree(u) as f64).sum::<f64>() / 2.0;
    let e_total = (observed_total - total_slots * (1.0 - p)) / denom;
    if e_total <= 0.0 {
        return 0.0;
    }

    // Calibrated total degree per community — one pass over nodes, not one
    // filter pass per community (the old O(n·C) inner loop).
    let mut a = vec![0f64; num_comms];
    for u in 0..n {
        a[partition[u]] += view.calibrated_degree(u).max(0.0);
    }

    let mut q = 0.0;
    for c in 0..num_comms {
        let sz = sizes[c] as f64;
        let intra_slots = sz * (sz - 1.0) / 2.0;
        let e_c = ((observed_intra[c] - intra_slots * (1.0 - p)) / denom).max(0.0);
        q += e_c / e_total - (a[c] / (2.0 * e_total)).powi(2);
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfgdpr::LfGdpr;
    use ldp_graph::generate::caveman_graph;
    use ldp_graph::metrics::modularity;
    use ldp_graph::Xoshiro256pp;

    fn clique_partition(cliques: usize, size: usize) -> Vec<usize> {
        (0..cliques * size).map(|u| u / size).collect()
    }

    #[test]
    fn estimate_tracks_truth_at_high_epsilon() {
        let g = caveman_graph(6, 8);
        let partition = clique_partition(6, 8);
        let truth = modularity(&g, &partition);
        let proto = LfGdpr::new(14.0).unwrap();
        let base = Xoshiro256pp::new(17);
        let view = proto.aggregate(&proto.collect_honest(&g, &base));
        let est = estimate_modularity(&view, &partition);
        assert!(
            (est - truth).abs() < 0.1,
            "estimated modularity {est} should approximate {truth}"
        );
    }

    #[test]
    fn good_partition_scores_higher_than_random() {
        let g = caveman_graph(6, 8);
        let good = clique_partition(6, 8);
        let bad: Vec<usize> = (0..48).map(|u| u % 6).collect();
        let proto = LfGdpr::new(10.0).unwrap();
        let base = Xoshiro256pp::new(19);
        let view = proto.aggregate(&proto.collect_honest(&g, &base));
        let q_good = estimate_modularity(&view, &good);
        let q_bad = estimate_modularity(&view, &bad);
        assert!(q_good > q_bad, "good {q_good} should beat bad {q_bad}");
    }

    #[test]
    #[should_panic(expected = "partition length")]
    fn partition_length_checked() {
        let g = caveman_graph(2, 3);
        let proto = LfGdpr::new(4.0).unwrap();
        let base = Xoshiro256pp::new(1);
        let view = proto.aggregate(&proto.collect_honest(&g, &base));
        estimate_modularity(&view, &[0, 0]);
    }
}
