//! Analytic-sampling mode for degree-centrality experiments at full paper
//! scale.
//!
//! Materializing the perturbed matrix is `O(N²)` bits; for Gplus
//! (N = 107,614) that is ~1.4 GB per run. But the degree-centrality gain
//! only needs the perturbed degrees *of the targets*, and under the
//! single-perturbation slot model each target's perturbed degree is an
//! exact sum of independent binomials:
//!
//! ```text
//! d̃_t = Binomial(d_t, p)                // true edges kept
//!      + Binomial(n − 1 − d_t, 1 − p)    // false genuine slots flipped on
//!      + Σ fake-slot contributions       // depends on the attack
//! ```
//!
//! Sampling these directly reproduces the estimator's exact distribution
//! (DESIGN.md §2) at `O(r)` cost per trial instead of `O(N²)`.
//! Cross-validated against the materialized pipeline in the integration
//! tests (`tests/sampled_vs_exact.rs`).

use ldp_mechanisms::sampling::sample_binomial;
use rand::Rng;

/// Degree-channel model of one population: `n` genuine users plus `m` fake
/// users, perturbation keep-probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct SampledDegreeModel {
    /// Number of genuine users.
    pub n_genuine: usize,
    /// Number of fake users.
    pub m_fake: usize,
    /// RR keep probability of the adjacency channel.
    pub p_keep: f64,
}

impl SampledDegreeModel {
    /// Total population `N = n + m`.
    pub fn population(&self) -> usize {
        self.n_genuine + self.m_fake
    }

    /// Samples the genuine-slot part of a target's perturbed degree:
    /// `Binomial(d, p) + Binomial(n−1−d, 1−p)`. This part is *common* to
    /// the honest and attacked worlds (genuine users' randomness does not
    /// change), so the caller samples it once and reuses it.
    pub fn sample_genuine_slots<R: Rng>(&self, true_degree: usize, rng: &mut R) -> usize {
        let genuine_slots = self.n_genuine - 1;
        let kept = sample_binomial(true_degree, self.p_keep, rng);
        let flipped = sample_binomial(genuine_slots - true_degree, 1.0 - self.p_keep, rng);
        kept + flipped
    }

    /// Samples the fake-slot contribution in the honest world: every fake
    /// user perturbs an empty neighborhood, so each of the `m` slots flips
    /// on with probability `1 − p`.
    pub fn sample_fake_honest<R: Rng>(&self, rng: &mut R) -> usize {
        sample_binomial(self.m_fake, 1.0 - self.p_keep, rng)
    }

    /// Fake-slot contribution in the attacked world when crafted vectors
    /// bypass the mechanism (RVA/MGA): exactly the crafted edges.
    pub fn fake_crafted_unperturbed(&self, crafted_edges: usize) -> usize {
        assert!(
            crafted_edges <= self.m_fake,
            "more crafted edges than fake users"
        );
        crafted_edges
    }

    /// Samples the fake-slot contribution in the attacked world when fake
    /// users run the LDP perturbation over their crafted vectors (RNA):
    /// crafted edges survive w.p. `p`, unclaimed fake slots flip on w.p.
    /// `1 − p`. Independent of the honest world's fake randomness, exactly
    /// as in the materialized pipeline (the attacker redraws its noise).
    pub fn sample_fake_crafted_perturbed<R: Rng>(
        &self,
        crafted_edges: usize,
        rng: &mut R,
    ) -> usize {
        assert!(
            crafted_edges <= self.m_fake,
            "more crafted edges than fake users"
        );
        let crafted_kept = sample_binomial(crafted_edges, self.p_keep, rng);
        let fake_noise = sample_binomial(self.m_fake - crafted_edges, 1.0 - self.p_keep, rng);
        crafted_kept + fake_noise
    }

    /// Convenience: the full honest-world perturbed degree (genuine and
    /// fake parts drawn from the same stream; fine when no cross-world
    /// coupling is needed).
    pub fn sample_before<R: Rng>(&self, true_degree: usize, rng: &mut R) -> usize {
        let genuine = self.sample_genuine_slots(true_degree, rng);
        genuine + self.sample_fake_honest(rng)
    }

    /// Degree centrality from a sampled perturbed degree.
    pub fn centrality(&self, perturbed_degree: usize) -> f64 {
        let n = self.population();
        if n < 2 {
            return 0.0;
        }
        perturbed_degree as f64 / (n as f64 - 1.0)
    }

    /// Expected perturbed degree of a genuine node before any attack.
    pub fn expected_before(&self, true_degree: usize) -> f64 {
        let p = self.p_keep;
        let genuine_slots = (self.n_genuine - 1) as f64;
        true_degree as f64 * p
            + (genuine_slots - true_degree as f64) * (1.0 - p)
            + self.m_fake as f64 * (1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::Xoshiro256pp;

    fn model() -> SampledDegreeModel {
        SampledDegreeModel {
            n_genuine: 900,
            m_fake: 100,
            p_keep: 0.85,
        }
    }

    #[test]
    fn before_matches_expectation() {
        let m = model();
        let mut rng = Xoshiro256pp::new(1);
        let trials = 4_000;
        let d = 40;
        let mean: f64 = (0..trials)
            .map(|_| m.sample_before(d, &mut rng) as f64)
            .sum::<f64>()
            / trials as f64;
        let expected = m.expected_before(d);
        assert!(
            (mean - expected).abs() < 0.02 * expected,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn crafted_edges_shift_the_degree() {
        let m = model();
        let mut rng = Xoshiro256pp::new(2);
        let trials = 4_000;
        let d = 40;
        let crafted = 80;
        let mean_after: f64 = (0..trials)
            .map(|_| {
                (m.sample_genuine_slots(d, &mut rng) + m.fake_crafted_unperturbed(crafted)) as f64
            })
            .sum::<f64>()
            / trials as f64;
        // After: fake noise replaced by exactly `crafted` deterministic ones.
        let expected = m.expected_before(d) - m.m_fake as f64 * (1.0 - m.p_keep) + crafted as f64;
        assert!(
            (mean_after - expected).abs() < 0.02 * expected,
            "mean {mean_after} vs {expected}"
        );
    }

    #[test]
    fn perturbed_crafting_attenuates_by_p() {
        let m = model();
        let mut rng = Xoshiro256pp::new(3);
        let trials = 6_000;
        let d = 10;
        let crafted = 50;
        let mean: f64 = (0..trials)
            .map(|_| {
                (m.sample_genuine_slots(d, &mut rng)
                    + m.sample_fake_crafted_perturbed(crafted, &mut rng)) as f64
            })
            .sum::<f64>()
            / trials as f64;
        let expected = d as f64 * m.p_keep
            + (899.0 - d as f64) * 0.15
            + crafted as f64 * m.p_keep
            + 50.0 * 0.15;
        assert!(
            (mean - expected).abs() < 0.03 * expected,
            "mean {mean} vs {expected}"
        );
    }

    #[test]
    fn centrality_normalization() {
        let m = model();
        assert!((m.centrality(999) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "more crafted edges")]
    fn crafted_edges_bounded_by_fakes() {
        let m = model();
        let mut rng = Xoshiro256pp::new(4);
        m.sample_fake_crafted_perturbed(101, &mut rng);
    }
}
