//! LF-GDPR: local perturbation and server-side aggregation.

mod calibration;
mod modularity;
mod sampled;
mod view;

pub use calibration::{
    calibrate_triangles, estimate_clustering, estimate_clustering_at, estimate_clustering_at_with,
    estimate_clustering_with, expected_perturbed_triangles, ClusteringEstimate, DegreeSource,
};
pub use modularity::estimate_modularity;
pub use sampled::SampledDegreeModel;
pub use view::PerturbedView;

use crate::ingest::StreamingAggregator;
use crate::report::AdjacencyReport;
use ldp_graph::runtime::{default_threads, parallel_map, threads_for_work};
use ldp_graph::CsrGraph;
use ldp_mechanisms::{LaplaceMechanism, MechanismError, PrivacyBudget, RandomizedResponse};
use rand::Rng;

/// The LF-GDPR protocol instance: a privacy budget split plus the two local
/// mechanisms it induces.
#[derive(Debug, Clone, Copy)]
pub struct LfGdpr {
    budget: PrivacyBudget,
    rr: RandomizedResponse,
    laplace: LaplaceMechanism,
}

impl LfGdpr {
    /// Creates the protocol for a total budget ε with an even ε₁/ε₂ split
    /// (the paper reports only total ε; see DESIGN.md §4).
    ///
    /// # Errors
    /// Propagates invalid-budget errors from the mechanisms.
    pub fn new(epsilon: f64) -> Result<Self, MechanismError> {
        Self::with_budget(PrivacyBudget::split_even(epsilon)?)
    }

    /// Creates the protocol from an explicit budget split.
    ///
    /// # Errors
    /// Propagates invalid-budget errors from the mechanisms.
    pub fn with_budget(budget: PrivacyBudget) -> Result<Self, MechanismError> {
        Ok(LfGdpr {
            budget,
            rr: RandomizedResponse::new(budget.epsilon_adjacency)?,
            // Degree sensitivity is 1 under edge-LDP.
            laplace: LaplaceMechanism::new(1.0, budget.epsilon_degree)?,
        })
    }

    /// The budget split in force.
    pub fn budget(&self) -> PrivacyBudget {
        self.budget
    }

    /// The randomized-response mechanism of the adjacency channel.
    pub fn rr(&self) -> RandomizedResponse {
        self.rr
    }

    /// The Laplace mechanism of the degree channel.
    pub fn laplace(&self) -> LaplaceMechanism {
        self.laplace
    }

    /// Keep probability `p = e^{ε₁}/(1+e^{ε₁})` of the adjacency channel.
    pub fn p_keep(&self) -> f64 {
        self.rr.p_keep()
    }

    /// Produces the honest report of `node` in `graph`.
    pub fn honest_report<R: Rng>(
        &self,
        graph: &CsrGraph,
        node: usize,
        rng: &mut R,
    ) -> AdjacencyReport {
        let truth = graph.adjacency_bit_vector(node);
        let bits = self.rr.perturb_bitset(&truth, Some(node), rng);
        let max_degree = (graph.num_nodes() - 1) as f64;
        let degree = self
            .laplace
            .perturb_degree(graph.degree(node) as f64, max_degree, rng);
        AdjacencyReport::new(bits, degree)
    }

    /// Collects honest reports from every node of `graph`. Each node draws
    /// from its own derived RNG stream, so a node's randomness does not
    /// depend on how many other nodes report — the common-random-numbers
    /// device the attack pipeline uses to isolate attack effects.
    ///
    /// The per-node streams also make the loop order-free, so large
    /// populations are collected in parallel; output is bit-identical at
    /// any thread count.
    pub fn collect_honest(
        &self,
        graph: &CsrGraph,
        base_rng: &ldp_graph::Xoshiro256pp,
    ) -> Vec<AdjacencyReport> {
        let n = graph.num_nodes();
        // Perturbation samples per adjacency bit, so the job is ~n² ops.
        let threads = threads_for_work(n.saturating_mul(n), default_threads());
        parallel_map((0..n).collect(), threads, |&node| {
            let mut rng = base_rng.derive(node as u64);
            self.honest_report(graph, node, &mut rng)
        })
    }

    /// Aggregates reports into the server-side perturbed view.
    ///
    /// # Panics
    /// Panics if reports disagree on the population size or their count
    /// differs from it.
    pub fn aggregate(&self, reports: &[AdjacencyReport]) -> PerturbedView {
        PerturbedView::from_reports(reports, self.rr)
    }

    /// Starts a [`StreamingAggregator`] for a population of `n` users,
    /// bound to this protocol's randomized-response mechanism. Ingest
    /// reports in id-ordered batches and `finalize()` into the view.
    pub fn streaming_aggregator(&self, n: usize) -> StreamingAggregator {
        StreamingAggregator::new(n, self.rr)
    }

    /// Aggregates a lazily produced report stream while holding at most
    /// `batch_size` reports in memory — see [`crate::ingest::aggregate_stream`].
    ///
    /// # Panics
    /// Panics if `batch_size` is zero or the stream does not yield exactly
    /// `n` reports spanning `n` users.
    pub fn aggregate_streamed<I>(&self, n: usize, batch_size: usize, reports: I) -> PerturbedView
    where
        I: IntoIterator<Item = AdjacencyReport>,
    {
        crate::ingest::aggregate_stream(n, self.rr, batch_size, reports)
    }

    /// Expected average perturbed degree for a graph of `n` nodes with true
    /// average degree `avg_degree`:
    /// `d̃ = p·d̄ + (1−p)(N−1−d̄)`.
    ///
    /// The paper's attacker computes this from public quantities (ε and the
    /// published average degree) to size its per-fake-user connection
    /// budget (§V, §VI).
    pub fn expected_perturbed_degree(&self, n: usize, avg_degree: f64) -> f64 {
        let p = self.p_keep();
        let others = (n as f64 - 1.0).max(0.0);
        p * avg_degree + (1.0 - p) * (others - avg_degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::generate::complete_graph;
    use ldp_graph::Xoshiro256pp;

    #[test]
    fn construction_from_total_budget() {
        let proto = LfGdpr::new(4.0).unwrap();
        assert_eq!(proto.budget().total(), 4.0);
        let expected_p = 2.0f64.exp() / (1.0 + 2.0f64.exp());
        assert!((proto.p_keep() - expected_p).abs() < 1e-12);
        assert!(LfGdpr::new(0.0).is_err());
    }

    #[test]
    fn honest_report_shape() {
        let g = complete_graph(20);
        let proto = LfGdpr::new(6.0).unwrap();
        let mut rng = Xoshiro256pp::new(1);
        let r = proto.honest_report(&g, 3, &mut rng);
        assert_eq!(r.population(), 20);
        assert!(!r.bits.get(3), "self slot must be clear");
        assert!((0.0..=19.0).contains(&r.degree));
    }

    #[test]
    fn collect_honest_is_per_node_deterministic() {
        let g = complete_graph(10);
        let proto = LfGdpr::new(4.0).unwrap();
        let base = Xoshiro256pp::new(7);
        let a = proto.collect_honest(&g, &base);
        let b = proto.collect_honest(&g, &base);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.bits, y.bits);
            assert_eq!(x.degree, y.degree);
        }
    }

    #[test]
    fn streamed_aggregate_matches_oneshot() {
        let g = complete_graph(40);
        let proto = LfGdpr::new(4.0).unwrap();
        let base = Xoshiro256pp::new(5);
        let reports = proto.collect_honest(&g, &base);
        let oneshot = proto.aggregate(&reports);
        let streamed = proto.aggregate_streamed(40, 7, reports);
        assert_eq!(streamed.matrix(), oneshot.matrix());
        assert_eq!(streamed.reported_degrees(), oneshot.reported_degrees());
    }

    #[test]
    fn expected_perturbed_degree_formula() {
        let proto = LfGdpr::new(4.0).unwrap();
        let p = proto.p_keep();
        let n = 101;
        let d = 10.0;
        let expected = p * d + (1.0 - p) * (100.0 - d);
        assert!((proto.expected_perturbed_degree(n, d) - expected).abs() < 1e-12);
    }

    #[test]
    fn reported_degree_tracks_truth_at_high_epsilon() {
        let g = complete_graph(30);
        let proto = LfGdpr::new(16.0).unwrap();
        let base = Xoshiro256pp::new(3);
        let reports = proto.collect_honest(&g, &base);
        for r in &reports {
            assert!(
                (r.degree - 29.0).abs() <= 2.0,
                "degree {} should be ~29",
                r.degree
            );
        }
    }
}
