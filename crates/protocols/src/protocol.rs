//! The protocol abstraction of the scenario engine: one object-safe trait
//! ([`GraphLdpProtocol`]) that both LF-GDPR and LDPGen implement, so every
//! (protocol × attack × metric × defense) combination is expressible
//! through one composable API instead of per-protocol entry points.
//!
//! ## Shape
//!
//! * [`GraphLdpProtocol::collect_honest`] / [`GraphLdpProtocol::aggregate`]
//!   / [`GraphLdpProtocol::aggregate_streamed`] — the report-level
//!   primitives, exchanging the protocol-agnostic [`UserReport`] enum.
//! * [`GraphLdpProtocol::run_worlds`] — the evaluation workhorse: builds
//!   the honest-world and (optionally) attacked-and-defended server views
//!   over *shared genuine randomness*, invoking the attack through a
//!   [`ReportCrafter`] callback and the defense through a [`ReportFilter`]
//!   callback. Putting both worlds in one call is what lets LF-GDPR
//!   collect its `O(N²)`-cost honest reports once and lets LDPGen keep its
//!   interactive per-phase crafting, while callers stay protocol-agnostic.
//! * [`GraphLdpProtocol::estimate`] — reads a [`Metric`] off a
//!   [`ServerView`]; the single place where metric dispatch lives
//!   (degree-centrality, calibrated clustering, calibrated modularity).
//!
//! ## Randomness discipline
//!
//! Every method takes the trial's base RNG and derives the same streams
//! the original pipelines used (per-user streams for collection,
//! [`STREAM_ATTACK`]/[`STREAM_DEFENSE`]/[`STREAM_LDPGEN_ATTACK`] for the
//! callbacks), so scenario-engine output is bit-for-bit identical to the
//! legacy entry points — pinned by `tests/scenario_equivalence.rs`.

use crate::ldpgen::LdpGen;
use crate::lfgdpr::{
    estimate_clustering_at, estimate_modularity, LfGdpr, PerturbedView, SampledDegreeModel,
};
use crate::report::{AdjacencyReport, DegreeVector, UserReport};
use ldp_graph::metrics::{local_clustering_coefficients, modularity};
use ldp_graph::{CsrGraph, Xoshiro256pp};
use rand::RngCore;
use std::fmt;

/// RNG stream tag of the LF-GDPR attack crafter (kept distinct from the
/// per-user streams, which are derived from ids < 2³²).
pub const STREAM_ATTACK: u64 = 0xA77A_C4ED_0000_0001;
/// RNG stream tag of the LF-GDPR defense filter.
pub const STREAM_DEFENSE: u64 = 0xDEFE_2E00_0000_0001;
/// RNG stream tag of the LDPGen attack crafter (one stream continued
/// across both phases, as in the original pipeline).
pub const STREAM_LDPGEN_ATTACK: u64 = 0xA77A;
/// RNG stream tag of LDPGen's graph synthesis.
pub const STREAM_LDPGEN_SYNTH: u64 = 0x5E_ED;

/// The graph statistics the paper's scenarios estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Degree centrality `c_i = d_i/(N−1)` of each target (paper §V).
    Degree,
    /// Local clustering coefficient of each target (paper §VI).
    Clustering,
    /// Modularity of a supplied partition (global: one estimate).
    Modularity,
}

impl Metric {
    /// All metrics in presentation order.
    pub const ALL: [Metric; 3] = [Metric::Degree, Metric::Clustering, Metric::Modularity];

    /// Display name as used in figures and error messages.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Degree => "degree-centrality",
            Metric::Clustering => "clustering-coefficient",
            Metric::Modularity => "modularity",
        }
    }

    /// Whether estimating this metric needs a community partition.
    pub fn requires_partition(self) -> bool {
        self == Metric::Modularity
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed failures of the protocol layer (hand-rolled `thiserror` style; the
/// workspace is hermetic, so no derive macros).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A report of one channel was handed to a protocol expecting another.
    WrongReportKind {
        /// Channel the protocol consumes.
        expected: &'static str,
        /// Channel the report carried.
        got: &'static str,
    },
    /// A server view of one protocol was handed to another's estimator.
    WrongViewKind {
        /// Protocol whose estimator ran.
        protocol: &'static str,
        /// View kind it needs.
        expected: &'static str,
    },
    /// The report set does not cover the population exactly once.
    ReportCountMismatch {
        /// Population size.
        expected: usize,
        /// Reports supplied.
        got: usize,
    },
    /// Reports disagree with the declared population size.
    PopulationMismatch {
        /// Declared population.
        expected: usize,
        /// Population a report spans.
        got: usize,
    },
    /// More crafted reports than users in the population.
    CraftedOverrun {
        /// Population size.
        population: usize,
        /// Crafted reports supplied.
        crafted: usize,
    },
    /// A crafting round returned a different number of uploads than the
    /// declared fake tail.
    CraftedCountMismatch {
        /// Fake users declared to [`GraphLdpProtocol::run_worlds`].
        expected: usize,
        /// Crafted reports the round produced.
        got: usize,
    },
    /// A crafted degree vector has the wrong number of groups.
    GroupCountMismatch {
        /// Groups the server defined this phase.
        expected: usize,
        /// Entries the crafted vector carried.
        got: usize,
    },
    /// The metric needs a community partition and none was supplied.
    MissingPartition,
    /// The partition does not cover the view's population.
    PartitionLength {
        /// Population size.
        expected: usize,
        /// Partition entries supplied.
        got: usize,
    },
    /// A target id lies outside the population.
    TargetOutOfRange {
        /// The offending target id.
        target: usize,
        /// Population size.
        population: usize,
    },
    /// The protocol has no report-filtering defense surface.
    DefenseUnsupported {
        /// Protocol name.
        protocol: &'static str,
    },
    /// A defense filter returned a repaired set of the wrong shape.
    FilterShape {
        /// Population size.
        expected: usize,
        /// Repaired reports / flags returned.
        got: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::WrongReportKind { expected, got } => {
                write!(f, "expected a {expected} report, got a {got} report")
            }
            ProtocolError::WrongViewKind { protocol, expected } => {
                write!(f, "{protocol} estimates from a {expected} view")
            }
            ProtocolError::ReportCountMismatch { expected, got } => {
                write!(f, "population of {expected} users but {got} reports")
            }
            ProtocolError::PopulationMismatch { expected, got } => {
                write!(
                    f,
                    "report spans {got} users but the population is {expected}"
                )
            }
            ProtocolError::CraftedOverrun {
                population,
                crafted,
            } => {
                write!(
                    f,
                    "{crafted} crafted reports exceed the population of {population}"
                )
            }
            ProtocolError::CraftedCountMismatch { expected, got } => {
                write!(
                    f,
                    "crafting round produced {got} reports for {expected} fake users"
                )
            }
            ProtocolError::GroupCountMismatch { expected, got } => {
                write!(
                    f,
                    "crafted degree vector has {got} groups, server defined {expected}"
                )
            }
            ProtocolError::MissingPartition => {
                write!(f, "modularity needs a partition of genuine users")
            }
            ProtocolError::PartitionLength { expected, got } => {
                write!(
                    f,
                    "partition covers {got} users but the population is {expected}"
                )
            }
            ProtocolError::TargetOutOfRange { target, population } => {
                write!(f, "target {target} outside the population of {population}")
            }
            ProtocolError::DefenseUnsupported { protocol } => {
                write!(f, "{protocol} has no report-filtering defense surface")
            }
            ProtocolError::FilterShape { expected, got } => {
                write!(
                    f,
                    "defense returned {got} entries for a population of {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The server-side state a protocol aggregates reports into; what
/// [`GraphLdpProtocol::estimate`] reads metrics from.
#[derive(Debug, Clone)]
pub enum ServerView {
    /// LF-GDPR: the materialized perturbed graph view.
    Perturbed(PerturbedView),
    /// LDPGen: the synthesized output graph.
    Synthetic(CsrGraph),
}

impl ServerView {
    /// Population the view spans.
    pub fn population(&self) -> usize {
        match self {
            ServerView::Perturbed(v) => v.num_users(),
            ServerView::Synthetic(g) => g.num_nodes(),
        }
    }

    /// The perturbed view inside, if this is the LF-GDPR variant.
    pub fn as_perturbed(&self) -> Option<&PerturbedView> {
        match self {
            ServerView::Perturbed(v) => Some(v),
            ServerView::Synthetic(_) => None,
        }
    }

    /// The synthetic graph inside, if this is the LDPGen variant.
    pub fn as_synthetic(&self) -> Option<&CsrGraph> {
        match self {
            ServerView::Perturbed(_) => None,
            ServerView::Synthetic(g) => Some(g),
        }
    }
}

/// What a protocol tells the attack layer when it asks for the fake tail's
/// uploads. Carries only protocol-side facts; the attacker's own state
/// (threat model, knowledge, options) lives in the crafter.
pub enum CraftContext<'a> {
    /// LF-GDPR's one-shot adjacency channel.
    Adjacency {
        /// The deployed protocol (mechanisms RNA/MGA reuse for
        /// honest-looking perturbation).
        protocol: &'a LfGdpr,
    },
    /// One LDPGen phase toward the server's current grouping.
    DegreeVectors {
        /// Phase number (1 or 2).
        phase: usize,
        /// Current group of every user.
        groups: &'a [usize],
        /// Number of groups this phase.
        num_groups: usize,
        /// Laplace scale honest users apply this phase (RNA mimics it).
        noise_scale: f64,
    },
}

/// Callback supplying the fake tail's uploads whenever the protocol runs a
/// collection round of the attacked world. Implemented by the scenario
/// engine's attack adapter; `rng` is the attack stream the protocol
/// derived for the whole run (one stream across rounds).
pub trait ReportCrafter {
    /// Crafts one upload per fake user for the round described by `ctx`.
    fn craft(&mut self, ctx: CraftContext<'_>, rng: &mut dyn RngCore) -> Vec<UserReport>;
}

/// The repaired upload set and per-user flags a defense filter returns.
pub struct FilterDecision {
    /// Reports the server aggregates instead (one per user).
    pub repaired: Vec<AdjacencyReport>,
    /// Which users were flagged as fake (one per user).
    pub flagged: Vec<bool>,
}

/// Callback applying a server-side countermeasure to an upload set before
/// aggregation. Implemented by the scenario engine's defense adapter;
/// `rng` is the defense stream the protocol derived for the run.
pub trait ReportFilter {
    /// Flags suspicious reports and repairs the upload set.
    fn filter(
        &mut self,
        reports: &[AdjacencyReport],
        protocol: &LfGdpr,
        rng: &mut dyn RngCore,
    ) -> FilterDecision;
}

/// The server views of one trial, built over shared genuine randomness.
#[derive(Debug, Clone)]
pub struct WorldViews {
    /// The honest (clean) world: every user reports truthfully.
    pub honest: ServerView,
    /// The attacked — and, if a filter ran, defended — world. `None` when
    /// neither a crafter nor a filter was supplied.
    pub attacked: Option<ServerView>,
    /// Per-user flags from the defense filter, when one ran.
    pub flagged: Option<Vec<bool>>,
}

/// An LDP protocol for graph-metric estimation, as seen by the scenario
/// engine. Object-safe: scenarios hold `Box<dyn GraphLdpProtocol>`.
///
/// Adding a protocol to the evaluation matrix is one `impl` of this trait;
/// every attack, metric, and defense then composes with it through
/// [`poison-core`'s `ScenarioBuilder`](https://docs.rs) with no new
/// pipeline code.
pub trait GraphLdpProtocol {
    /// Display name (as used in figures and error messages).
    fn name(&self) -> &'static str;

    /// Collects the honest upload of every user of `graph`, one derived
    /// RNG stream per user id — the common-random-numbers device that
    /// makes per-user randomness independent of population size and
    /// collection order. For interactive protocols (LDPGen) this is the
    /// first round's uploads.
    fn collect_honest(&self, graph: &CsrGraph, base: &Xoshiro256pp) -> Vec<UserReport>;

    /// Folds a full upload set into the server view, running any remaining
    /// protocol rounds honestly (LDPGen clusters, re-collects phase 2, and
    /// synthesizes; LF-GDPR folds the reports directly).
    ///
    /// # Errors
    /// Returns a typed error on foreign report kinds or population
    /// mismatches.
    fn aggregate(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        reports: Vec<UserReport>,
    ) -> Result<ServerView, ProtocolError>;

    /// Like [`Self::aggregate`], but bounds resident report memory to
    /// `batch_size` uploads where the protocol has a streaming ingest path
    /// (LF-GDPR; bit-identical to the one-shot fold). Protocols without
    /// one fall back to [`Self::aggregate`].
    ///
    /// # Errors
    /// As [`Self::aggregate`].
    fn aggregate_streamed(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        _batch_size: usize,
        reports: Vec<UserReport>,
    ) -> Result<ServerView, ProtocolError> {
        self.aggregate(graph, base, reports)
    }

    /// Builds the honest world and, when a crafter is given, the attacked
    /// world — over shared genuine randomness, so per-target differences
    /// are caused by the fake uploads alone (paper Eq. 4). A filter, when
    /// given, repairs the (attacked) upload set before aggregation; the
    /// honest view stays the clean baseline.
    ///
    /// `graph` is the *extended* graph: genuine users plus the declared
    /// `m_fake`-user fake tail as isolated nodes — each crafting round
    /// must return exactly `m_fake` uploads, or the run fails with
    /// [`ProtocolError::CraftedCountMismatch`] before any slot is
    /// overwritten. `ingest_batch` routes LF-GDPR aggregation through the
    /// streaming path with that batch size.
    ///
    /// # Errors
    /// Returns a typed error on foreign report kinds, shape mismatches, or
    /// an unsupported filter.
    fn run_worlds(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        m_fake: usize,
        crafter: Option<&mut dyn ReportCrafter>,
        filter: Option<&mut dyn ReportFilter>,
        ingest_batch: Option<usize>,
    ) -> Result<WorldViews, ProtocolError>;

    /// Estimates `metric` from a server view: per-target values for degree
    /// centrality and clustering, a single value for modularity (which
    /// needs `partition`, covering the view's full population).
    ///
    /// # Errors
    /// Returns a typed error on a foreign view, an out-of-range target, or
    /// a missing/short partition.
    fn estimate(
        &self,
        view: &ServerView,
        metric: Metric,
        targets: &[usize],
        partition: Option<&[usize]>,
    ) -> Result<Vec<f64>, ProtocolError>;

    /// The analytic degree-channel model, for protocols whose per-target
    /// perturbed degree has a closed-form distribution (LF-GDPR). Lets the
    /// engine evaluate degree scenarios at `O(r)` per trial instead of
    /// materializing the `O(N²)` view.
    fn sampled_degree_model(
        &self,
        _n_genuine: usize,
        _m_fake: usize,
    ) -> Option<SampledDegreeModel> {
        None
    }

    /// The public parameters an attacker derives its knowledge from
    /// (paper §IV-A: the perturbation runs client-side, so its parameters
    /// are known).
    fn public_params(&self, population: usize, avg_true_degree: f64) -> PublicParams;

    /// The concrete adjacency-channel protocol behind this trait object,
    /// when there is one (LF-GDPR). Consumers that must speak the
    /// adjacency channel specifically — report-filtering defenses, the
    /// wire-collection bridge in `ldp-collector` — recover it here instead
    /// of downcasting; protocols without an adjacency channel return
    /// `None` and those consumers fall back to the generic path.
    fn as_adjacency_protocol(&self) -> Option<&LfGdpr> {
        None
    }
}

/// Publicly known protocol parameters (see
/// [`GraphLdpProtocol::public_params`]).
#[derive(Debug, Clone, Copy)]
pub struct PublicParams {
    /// Keep probability of the adjacency channel (1 when there is none).
    pub p_keep: f64,
    /// Laplace scale of the degree channel.
    pub degree_noise_scale: f64,
    /// Expected average degree of the perturbed graph (equals the true
    /// average degree when there is no adjacency channel).
    pub avg_perturbed_degree: f64,
}

// ---------------------------------------------------------------------------
// LF-GDPR
// ---------------------------------------------------------------------------

impl LfGdpr {
    /// Validates an adjacency upload set and folds it into a view, through
    /// the streaming path when a batch size is given.
    fn fold_reports(
        &self,
        reports: &[AdjacencyReport],
        ingest_batch: Option<usize>,
    ) -> Result<ServerView, ProtocolError> {
        let n = reports.len();
        for r in reports {
            if r.population() != n {
                return Err(ProtocolError::PopulationMismatch {
                    expected: n,
                    got: r.population(),
                });
            }
        }
        let view = match ingest_batch {
            Some(batch) => self.aggregate_streamed(n, batch.max(1), reports.iter().cloned()),
            None => self.aggregate(reports),
        };
        Ok(ServerView::Perturbed(view))
    }
}

impl GraphLdpProtocol for LfGdpr {
    fn name(&self) -> &'static str {
        "LF-GDPR"
    }

    fn collect_honest(&self, graph: &CsrGraph, base: &Xoshiro256pp) -> Vec<UserReport> {
        LfGdpr::collect_honest(self, graph, base)
            .into_iter()
            .map(UserReport::Adjacency)
            .collect()
    }

    fn aggregate(
        &self,
        _graph: &CsrGraph,
        _base: &Xoshiro256pp,
        reports: Vec<UserReport>,
    ) -> Result<ServerView, ProtocolError> {
        let reports = unwrap_adjacency(reports)?;
        self.fold_reports(&reports, None)
    }

    fn aggregate_streamed(
        &self,
        _graph: &CsrGraph,
        _base: &Xoshiro256pp,
        batch_size: usize,
        reports: Vec<UserReport>,
    ) -> Result<ServerView, ProtocolError> {
        let reports = unwrap_adjacency(reports)?;
        self.fold_reports(&reports, Some(batch_size))
    }

    fn run_worlds(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        m_fake: usize,
        crafter: Option<&mut dyn ReportCrafter>,
        filter: Option<&mut dyn ReportFilter>,
        ingest_batch: Option<usize>,
    ) -> Result<WorldViews, ProtocolError> {
        let n = graph.num_nodes();
        if m_fake > n {
            return Err(ProtocolError::CraftedOverrun {
                population: n,
                crafted: m_fake,
            });
        }
        // One collection pass serves both worlds: per-user derived streams
        // make the honest reports identical either way, and only the fake
        // tail changes between worlds.
        let mut reports = LfGdpr::collect_honest(self, graph, base);
        let honest = self.fold_reports(&reports, ingest_batch)?;

        let attacked = if let Some(crafter) = crafter {
            let mut rng = base.derive(STREAM_ATTACK);
            let crafted = crafter.craft(CraftContext::Adjacency { protocol: self }, &mut rng);
            if crafted.len() != m_fake {
                return Err(ProtocolError::CraftedCountMismatch {
                    expected: m_fake,
                    got: crafted.len(),
                });
            }
            for (offset, report) in crafted.into_iter().enumerate() {
                let report = report.into_adjacency()?;
                if report.population() != n {
                    return Err(ProtocolError::PopulationMismatch {
                        expected: n,
                        got: report.population(),
                    });
                }
                reports[n - m_fake + offset] = report;
            }
            true
        } else {
            false
        };

        let mut flagged = None;
        let attacked_view = if attacked || filter.is_some() {
            let working = if let Some(filter) = filter {
                let mut rng = base.derive(STREAM_DEFENSE);
                let decision = filter.filter(&reports, self, &mut rng);
                if decision.repaired.len() != n || decision.flagged.len() != n {
                    return Err(ProtocolError::FilterShape {
                        expected: n,
                        got: decision.repaired.len().min(decision.flagged.len()),
                    });
                }
                flagged = Some(decision.flagged);
                decision.repaired
            } else {
                reports
            };
            Some(self.fold_reports(&working, ingest_batch)?)
        } else {
            None
        };

        Ok(WorldViews {
            honest,
            attacked: attacked_view,
            flagged,
        })
    }

    fn estimate(
        &self,
        view: &ServerView,
        metric: Metric,
        targets: &[usize],
        partition: Option<&[usize]>,
    ) -> Result<Vec<f64>, ProtocolError> {
        let view = view.as_perturbed().ok_or(ProtocolError::WrongViewKind {
            protocol: "LF-GDPR",
            expected: "perturbed",
        })?;
        check_targets(targets, view.num_users())?;
        match metric {
            Metric::Degree => Ok(targets.iter().map(|&t| view.degree_centrality(t)).collect()),
            Metric::Clustering => Ok(estimate_clustering_at(view, targets)),
            Metric::Modularity => {
                let partition = check_partition(partition, view.num_users())?;
                Ok(vec![estimate_modularity(view, partition)])
            }
        }
    }

    fn sampled_degree_model(&self, n_genuine: usize, m_fake: usize) -> Option<SampledDegreeModel> {
        Some(SampledDegreeModel {
            n_genuine,
            m_fake,
            p_keep: self.p_keep(),
        })
    }

    fn public_params(&self, population: usize, avg_true_degree: f64) -> PublicParams {
        PublicParams {
            p_keep: self.p_keep(),
            degree_noise_scale: self.laplace().scale(),
            avg_perturbed_degree: self.expected_perturbed_degree(population, avg_true_degree),
        }
    }

    fn as_adjacency_protocol(&self) -> Option<&LfGdpr> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------
// LDPGen
// ---------------------------------------------------------------------------

impl GraphLdpProtocol for LdpGen {
    fn name(&self) -> &'static str {
        "LDPGen"
    }

    fn collect_honest(&self, graph: &CsrGraph, base: &Xoshiro256pp) -> Vec<UserReport> {
        // Phase 1: the server's initial grouping is random (stream 0xA11,
        // as in `aggregate_with_crafted`), and every user reports toward it
        // from its own derived stream.
        let n = graph.num_nodes();
        let groups0 = self.initial_groups(n, base);
        (0..n)
            .map(|node| {
                let mut rng = base.derive((1u64 << 32) | node as u64);
                UserReport::DegreeVector(self.honest_degree_vector(
                    graph,
                    node,
                    &groups0,
                    self.k0(),
                    &mut rng,
                ))
            })
            .collect()
    }

    fn aggregate(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        reports: Vec<UserReport>,
    ) -> Result<ServerView, ProtocolError> {
        // The supplied reports are the phase-1 uploads; the remaining
        // rounds (refined clustering, phase 2, synthesis) run honestly, so
        // `aggregate(collect_honest(g))` reproduces the honest pipeline
        // bit for bit.
        let n = graph.num_nodes();
        if reports.len() != n {
            return Err(ProtocolError::ReportCountMismatch {
                expected: n,
                got: reports.len(),
            });
        }
        let mut vectors1 = Vec::with_capacity(n);
        for report in reports {
            let v = report.into_degree_vector()?;
            if v.len() != self.k0() {
                return Err(ProtocolError::GroupCountMismatch {
                    expected: self.k0(),
                    got: v.len(),
                });
            }
            vectors1.push(v);
        }
        let aggregate = self.finish_from_phase1(graph, base, vectors1, |_, _, _| Vec::new());
        let mut synth_rng = base.derive(STREAM_LDPGEN_SYNTH);
        Ok(ServerView::Synthetic(
            self.synthesize(&aggregate, &mut synth_rng),
        ))
    }

    fn run_worlds(
        &self,
        graph: &CsrGraph,
        base: &Xoshiro256pp,
        m_fake: usize,
        crafter: Option<&mut dyn ReportCrafter>,
        filter: Option<&mut dyn ReportFilter>,
        _ingest_batch: Option<usize>,
    ) -> Result<WorldViews, ProtocolError> {
        if filter.is_some() {
            // LDPGen collects degree vectors, not adjacency reports; the
            // paper's defenses have nothing to filter here.
            return Err(ProtocolError::DefenseUnsupported { protocol: "LDPGen" });
        }
        let honest_agg = self.aggregate(graph, base);
        let mut synth_rng = base.derive(STREAM_LDPGEN_SYNTH);
        let honest = ServerView::Synthetic(self.synthesize(&honest_agg, &mut synth_rng));

        let attacked = match crafter {
            None => None,
            Some(crafter) => {
                let mut craft_rng = base.derive(STREAM_LDPGEN_ATTACK);
                let noise_scale = 2.0 / self.epsilon();
                // `aggregate_with_crafted` takes an infallible closure;
                // capture the first conversion error and surface it after.
                let mut craft_err: Option<ProtocolError> = None;
                let attacked_agg =
                    self.aggregate_with_crafted(graph, base, |phase, groups, num_groups| {
                        if craft_err.is_some() {
                            return Vec::new();
                        }
                        let crafted = crafter.craft(
                            CraftContext::DegreeVectors {
                                phase,
                                groups,
                                num_groups,
                                noise_scale,
                            },
                            &mut craft_rng,
                        );
                        if crafted.len() != m_fake {
                            craft_err = Some(ProtocolError::CraftedCountMismatch {
                                expected: m_fake,
                                got: crafted.len(),
                            });
                            return Vec::new();
                        }
                        let mut vectors: Vec<DegreeVector> = Vec::with_capacity(crafted.len());
                        for report in crafted {
                            match report.into_degree_vector() {
                                Ok(v) if v.len() == num_groups => vectors.push(v),
                                Ok(v) => {
                                    craft_err = Some(ProtocolError::GroupCountMismatch {
                                        expected: num_groups,
                                        got: v.len(),
                                    });
                                    return Vec::new();
                                }
                                Err(e) => {
                                    craft_err = Some(e);
                                    return Vec::new();
                                }
                            }
                        }
                        vectors
                    });
                if let Some(e) = craft_err {
                    return Err(e);
                }
                let mut synth_rng = base.derive(STREAM_LDPGEN_SYNTH);
                Some(ServerView::Synthetic(
                    self.synthesize(&attacked_agg, &mut synth_rng),
                ))
            }
        };

        Ok(WorldViews {
            honest,
            attacked,
            flagged: None,
        })
    }

    fn estimate(
        &self,
        view: &ServerView,
        metric: Metric,
        targets: &[usize],
        partition: Option<&[usize]>,
    ) -> Result<Vec<f64>, ProtocolError> {
        let graph = view.as_synthetic().ok_or(ProtocolError::WrongViewKind {
            protocol: "LDPGen",
            expected: "synthetic",
        })?;
        let n = graph.num_nodes();
        check_targets(targets, n)?;
        match metric {
            Metric::Degree => {
                let denom = (n as f64 - 1.0).max(1.0);
                Ok(targets
                    .iter()
                    .map(|&t| graph.degree(t) as f64 / denom)
                    .collect())
            }
            Metric::Clustering => {
                let cc = local_clustering_coefficients(graph);
                Ok(targets.iter().map(|&t| cc[t]).collect())
            }
            Metric::Modularity => {
                let partition = check_partition(partition, n)?;
                Ok(vec![modularity(graph, partition)])
            }
        }
    }

    fn public_params(&self, _population: usize, avg_true_degree: f64) -> PublicParams {
        PublicParams {
            // No adjacency channel: nothing is flipped, nothing inflated.
            p_keep: 1.0,
            degree_noise_scale: 2.0 / self.epsilon(),
            avg_perturbed_degree: avg_true_degree,
        }
    }
}

fn unwrap_adjacency(reports: Vec<UserReport>) -> Result<Vec<AdjacencyReport>, ProtocolError> {
    reports
        .into_iter()
        .map(UserReport::into_adjacency)
        .collect()
}

fn check_targets(targets: &[usize], population: usize) -> Result<(), ProtocolError> {
    for &t in targets {
        if t >= population {
            return Err(ProtocolError::TargetOutOfRange {
                target: t,
                population,
            });
        }
    }
    Ok(())
}

fn check_partition(
    partition: Option<&[usize]>,
    population: usize,
) -> Result<&[usize], ProtocolError> {
    let partition = partition.ok_or(ProtocolError::MissingPartition)?;
    if partition.len() != population {
        return Err(ProtocolError::PartitionLength {
            expected: population,
            got: partition.len(),
        });
    }
    Ok(partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::generate::caveman_graph;

    fn base() -> Xoshiro256pp {
        Xoshiro256pp::new(41)
    }

    #[test]
    fn lfgdpr_collect_aggregate_matches_inherent_pipeline() {
        let g = caveman_graph(4, 6);
        let proto = LfGdpr::new(4.0).unwrap();
        let trait_obj: &dyn GraphLdpProtocol = &proto;
        let reports = trait_obj.collect_honest(&g, &base());
        let view = trait_obj.aggregate(&g, &base(), reports).unwrap();
        let inherent = proto.aggregate(&proto.collect_honest(&g, &base()));
        let ServerView::Perturbed(v) = view else {
            panic!("LF-GDPR must produce a perturbed view");
        };
        assert_eq!(v.matrix(), inherent.matrix());
        assert_eq!(v.reported_degrees(), inherent.reported_degrees());
    }

    #[test]
    fn lfgdpr_streamed_aggregate_is_bit_identical() {
        let g = caveman_graph(5, 8);
        let proto = LfGdpr::new(2.0).unwrap();
        let trait_obj: &dyn GraphLdpProtocol = &proto;
        let reports = trait_obj.collect_honest(&g, &base());
        let oneshot = trait_obj.aggregate(&g, &base(), reports.clone()).unwrap();
        let streamed = trait_obj
            .aggregate_streamed(&g, &base(), 7, reports)
            .unwrap();
        assert_eq!(
            oneshot.as_perturbed().unwrap().matrix(),
            streamed.as_perturbed().unwrap().matrix()
        );
    }

    #[test]
    fn ldpgen_collect_aggregate_matches_honest_run() {
        let g = caveman_graph(6, 6);
        let proto = LdpGen::with_defaults(4.0).unwrap();
        let trait_obj: &dyn GraphLdpProtocol = &proto;
        let reports = trait_obj.collect_honest(&g, &base());
        let view = trait_obj.aggregate(&g, &base(), reports).unwrap();
        let direct_agg = proto.aggregate(&g, &base());
        let mut synth_rng = base().derive(STREAM_LDPGEN_SYNTH);
        let direct = proto.synthesize(&direct_agg, &mut synth_rng);
        assert_eq!(view.as_synthetic().unwrap(), &direct);
    }

    #[test]
    fn run_worlds_without_attack_has_no_attacked_view() {
        let g = caveman_graph(3, 5);
        let proto = LfGdpr::new(4.0).unwrap();
        let views = GraphLdpProtocol::run_worlds(&proto, &g, &base(), 0, None, None, None).unwrap();
        assert!(views.attacked.is_none());
        assert!(views.flagged.is_none());
        assert_eq!(views.honest.population(), 15);
    }

    #[test]
    fn foreign_reports_are_rejected_with_typed_errors() {
        let g = caveman_graph(2, 4);
        let lf = LfGdpr::new(4.0).unwrap();
        let lg = LdpGen::with_defaults(4.0).unwrap();
        let adj_reports = GraphLdpProtocol::collect_honest(&lf, &g, &base());
        let vec_reports = GraphLdpProtocol::collect_honest(&lg, &g, &base());
        assert!(matches!(
            GraphLdpProtocol::aggregate(&lf, &g, &base(), vec_reports),
            Err(ProtocolError::WrongReportKind { .. })
        ));
        assert!(matches!(
            GraphLdpProtocol::aggregate(&lg, &g, &base(), adj_reports),
            Err(ProtocolError::WrongReportKind { .. })
        ));
    }

    #[test]
    fn cross_view_estimation_is_rejected() {
        let g = caveman_graph(3, 4);
        let lf = LfGdpr::new(4.0).unwrap();
        let lg = LdpGen::with_defaults(4.0).unwrap();
        let lf_view = GraphLdpProtocol::run_worlds(&lf, &g, &base(), 0, None, None, None)
            .unwrap()
            .honest;
        assert!(matches!(
            lg.estimate(&lf_view, Metric::Degree, &[0], None),
            Err(ProtocolError::WrongViewKind { .. })
        ));
    }

    #[test]
    fn estimate_validates_targets_and_partition() {
        let g = caveman_graph(3, 4);
        let lf = LfGdpr::new(4.0).unwrap();
        let view = GraphLdpProtocol::run_worlds(&lf, &g, &base(), 0, None, None, None)
            .unwrap()
            .honest;
        assert!(matches!(
            lf.estimate(&view, Metric::Degree, &[99], None),
            Err(ProtocolError::TargetOutOfRange { .. })
        ));
        assert!(matches!(
            lf.estimate(&view, Metric::Modularity, &[], None),
            Err(ProtocolError::MissingPartition)
        ));
        assert!(matches!(
            lf.estimate(&view, Metric::Modularity, &[], Some(&[0, 1])),
            Err(ProtocolError::PartitionLength { .. })
        ));
        let partition: Vec<usize> = (0..12).map(|u| u / 4).collect();
        let q = lf
            .estimate(&view, Metric::Modularity, &[], Some(&partition))
            .unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn miscounting_crafters_are_rejected_before_any_slot_is_written() {
        /// Returns one report too many, whatever the channel.
        struct Overeager;
        impl ReportCrafter for Overeager {
            fn craft(&mut self, ctx: CraftContext<'_>, rng: &mut dyn RngCore) -> Vec<UserReport> {
                match ctx {
                    CraftContext::Adjacency { protocol } => {
                        let g = caveman_graph(2, 6);
                        (0..3)
                            .map(|node| {
                                let mut rng: &mut dyn RngCore = rng;
                                UserReport::Adjacency(protocol.honest_report(&g, node, &mut rng))
                            })
                            .collect()
                    }
                    CraftContext::DegreeVectors { num_groups, .. } => {
                        vec![UserReport::DegreeVector(vec![0.0; num_groups]); 3]
                    }
                }
            }
        }
        let g = caveman_graph(2, 6);
        let lf = LfGdpr::new(4.0).unwrap();
        let lg = LdpGen::with_defaults(4.0).unwrap();
        for protocol in [&lf as &dyn GraphLdpProtocol, &lg] {
            let mut crafter = Overeager;
            let err = protocol
                .run_worlds(&g, &base(), 2, Some(&mut crafter), None, None)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    ProtocolError::CraftedCountMismatch {
                        expected: 2,
                        got: 3
                    }
                ),
                "{}: got {err}",
                protocol.name()
            );
        }
    }

    #[test]
    fn ldpgen_rejects_filters() {
        struct NullFilter;
        impl ReportFilter for NullFilter {
            fn filter(
                &mut self,
                reports: &[AdjacencyReport],
                _protocol: &LfGdpr,
                _rng: &mut dyn RngCore,
            ) -> FilterDecision {
                FilterDecision {
                    repaired: reports.to_vec(),
                    flagged: vec![false; reports.len()],
                }
            }
        }
        let g = caveman_graph(2, 4);
        let lg = LdpGen::with_defaults(4.0).unwrap();
        let mut filter = NullFilter;
        assert!(matches!(
            GraphLdpProtocol::run_worlds(&lg, &g, &base(), 0, None, Some(&mut filter), None),
            Err(ProtocolError::DefenseUnsupported { .. })
        ));
    }

    #[test]
    fn metric_helpers() {
        assert_eq!(Metric::Degree.name(), "degree-centrality");
        assert!(Metric::Modularity.requires_partition());
        assert!(!Metric::Clustering.requires_partition());
        assert_eq!(Metric::ALL.len(), 3);
        assert_eq!(format!("{}", Metric::Modularity), "modularity");
    }

    #[test]
    fn errors_display_their_shape() {
        let e = ProtocolError::PopulationMismatch {
            expected: 10,
            got: 9,
        };
        assert!(e.to_string().contains("population is 10"));
        let e = ProtocolError::MissingPartition;
        assert!(e.to_string().contains("partition"));
    }

    #[test]
    fn public_params_match_the_protocols() {
        let lf = LfGdpr::new(4.0).unwrap();
        let p = GraphLdpProtocol::public_params(&lf, 100, 8.0);
        assert!((p.p_keep - lf.p_keep()).abs() < 1e-15);
        assert!((p.avg_perturbed_degree - lf.expected_perturbed_degree(100, 8.0)).abs() < 1e-12);
        let lg = LdpGen::with_defaults(4.0).unwrap();
        let p = GraphLdpProtocol::public_params(&lg, 100, 8.0);
        assert_eq!(p.p_keep, 1.0);
        assert!((p.degree_noise_scale - 0.5).abs() < 1e-15);
        assert_eq!(p.avg_perturbed_degree, 8.0);
    }
}
