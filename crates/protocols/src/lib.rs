//! # ldp-protocols
//!
//! The two LDP protocols for graph-metric estimation that the paper
//! attacks:
//!
//! * [`lfgdpr`] — **LF-GDPR** (Ye et al., TKDE'20): every user uploads a
//!   randomized-response-perturbed adjacency bit vector (budget ε₁) and a
//!   Laplace-perturbed degree (budget ε₂); the server aggregates them into
//!   a perturbed graph view and estimates degree centrality, clustering
//!   coefficients (via the three-case triangle calibration `R(·)`,
//!   paper Eq. 15–19) and modularity.
//! * [`ldpgen`] — **LDPGen** (Qin et al., CCS'17): users report
//!   Laplace-noisy degree vectors toward server-chosen groups over two
//!   phases; the server clusters users and synthesizes a whole graph from
//!   which any metric can be read.
//! * [`ingest`] — the streaming, sharded report-aggregation engine behind
//!   LF-GDPR's server side: bounded batches folded in parallel into the
//!   lower-triangle aggregate, finalized into a [`PerturbedView`]. The
//!   one-shot `PerturbedView::from_reports` is a wrapper over this path.
//! * [`protocol`] — the object-safe [`GraphLdpProtocol`] trait both
//!   protocols implement, exchanging the protocol-agnostic [`UserReport`]
//!   enum ([`report`]): the surface the scenario engine in `poison-core`
//!   composes attacks, metrics, and defenses over.
//! * [`wire`] — the binary wire codec (length-prefixed frames, varint ids,
//!   bit-packed adjacency rows, versioned stream header) the collection
//!   service `ldp-collector` moves reports and finalized views over, with
//!   typed [`WireError`]s for every malformed frame.
//!
//! ## Edge-perturbation model
//!
//! Every undirected slot `{i, j}` is perturbed **exactly once**: the
//! higher-id endpoint's report is authoritative for the slot
//! (users effectively upload the lower-triangle half of their bit vector).
//! This matches the single-`p` algebra the paper's calibration uses
//! (triangle retention `p³`, Eq. 16) and gives the attacker of the upper
//! crates exactly the power the threat model grants: fake users — appended
//! after genuine ids — own every slot between themselves and genuine users.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ingest;
pub mod ldpgen;
pub mod lfgdpr;
pub mod protocol;
pub mod report;
pub mod wire;

pub use ingest::StreamingAggregator;
pub use ldpgen::LdpGen;
pub use lfgdpr::{LfGdpr, PerturbedView};
pub use protocol::{
    CraftContext, FilterDecision, GraphLdpProtocol, Metric, ProtocolError, PublicParams,
    ReportCrafter, ReportFilter, ServerView, WorldViews,
};
pub use report::{AdjacencyReport, DegreeVector, UserReport};
pub use wire::WireError;
