//! Binary wire codec for report collection.
//!
//! The collection service (`ldp-collector`) moves [`UserReport`]s between
//! simulated users and the server over TCP. This module is the codec both
//! sides share: compact, allocation-conscious, `std`-only (the workspace is
//! hermetic), and **total** on the decode side — malformed input yields a
//! typed [`WireError`], never a panic and never an unbounded allocation.
//!
//! ## Stream header
//!
//! A connection opens with a 6-byte versioned header exchanged by both
//! sides: the magic `b"LDPC"`, a protocol [`VERSION`] byte, and a reserved
//! flags byte (zero). Peers speaking another protocol fail fast with
//! [`WireError::BadMagic`]; a peer on an *older* protocol version (v1 had
//! no round routing — its report frames name no round) is a typed
//! [`WireError::VersionDowngrade`], a *newer* one a
//! [`WireError::UnsupportedVersion`]. The split matters operationally: a
//! downgrade names the exact remediation (upgrade the peer), while an
//! upgrade means this side is the stale one.
//!
//! ## Frames
//!
//! Everything after the header travels in length-prefixed frames:
//!
//! | bytes | field |
//! |-------|-------|
//! | 4     | `len` — little-endian `u32`, length of kind + payload |
//! | 1     | `kind` — frame discriminator (owned by the collector protocol) |
//! | `len − 1` | payload |
//!
//! `len` is capped at [`MAX_FRAME_LEN`]; an oversize prefix is rejected
//! *before* any allocation ([`WireError::OversizeFrame`]), so a hostile
//! peer cannot OOM the collector with a 4 GiB length claim.
//!
//! ## Report payload
//!
//! [`encode_report`]/[`decode_report`] serialize one user upload:
//!
//! | field | encoding |
//! |-------|----------|
//! | user id | varint (LEB128) |
//! | channel tag | `u8`: 0 = adjacency, 1 = degree vector |
//! | adjacency: degree | `f64` bits, little-endian |
//! | adjacency: population `N` | varint |
//! | adjacency: word count `w` | varint (trailing zero words trimmed) |
//! | adjacency: bit-packed row | `w` × `u64` little-endian |
//! | degree vector: length `k` | varint |
//! | degree vector: entries | `k` × `f64` bits, little-endian |
//!
//! The adjacency row is the report's packed [`BitSet`] words with trailing
//! all-zero words elided — an RR-perturbed row at the paper's budgets is
//! dense, but crafted rows (RNA: a single bit) compress well. Decoding
//! restores the elided words and rejects rows that claim bits at or beyond
//! `N` ([`WireError::BadPadding`]): decoded reports are always canonical.
//!
//! `encode ∘ decode == id` for every well-formed [`UserReport`] — pinned by
//! `tests/proptest_wire.rs` along with the malformed-frame cases.

use crate::lfgdpr::PerturbedView;
use crate::report::{AdjacencyReport, UserReport};
use ldp_graph::{BitMatrix, BitSet};
use ldp_mechanisms::RandomizedResponse;
use std::fmt;
use std::io::{Read, Write};

/// Magic bytes opening every collection stream.
pub const MAGIC: [u8; 4] = *b"LDPC";

/// Wire protocol version this codec speaks. Version 2 routes every
/// report-bearing frame by an explicit round id (see
/// [`encode_routed_report`] / [`encode_routed_batch`]) so one daemon can
/// multiplex many concurrent rounds; version 1 frames carried none and
/// are refused at the handshake with [`WireError::VersionDowngrade`].
pub const VERSION: u8 = 2;

/// Upper bound on one frame's `kind + payload` length (64 MiB). Large
/// enough for a finalized view at the collector's population cap, small
/// enough that a malicious length prefix cannot trigger an absurd
/// allocation.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Upper bound on a population size accepted by the decoder (2²⁷ users ⇒ a
/// 16 MiB row). Collector configuration caps populations far lower; this
/// bound only exists so a hostile varint cannot size a giant allocation.
pub const MAX_WIRE_POPULATION: usize = 1 << 27;

/// Upper bound on the report count a single `REPORT_BATCH` frame may
/// claim. Like every other length claim it is proved *before* any
/// per-entry work: a hostile count is a typed refusal, not a loop bound.
pub const MAX_REPORTS_PER_BATCH: usize = 1 << 16;

/// Frame kind bytes of the collection protocol (wire version 2).
///
/// These live here, next to the codec, rather than in the collector
/// daemon: the `ldp-lint` wire-totality rules (`opcode-arm`,
/// `opcode-proptest`) require every constant in this module to be
/// referenced by a collector decode arm and exercised by a proptest, so
/// adding an opcode without wiring it end-to-end fails CI.
pub mod frames {
    /// Client → server: open a round (round id, tenant, channel, quota).
    pub const OPEN: u8 = 0x01;
    /// Client → server: one routed report (unacknowledged).
    pub const REPORT: u8 = 0x02;
    /// Client → server: close the named round, reply with the summary.
    pub const CLOSE: u8 = 0x03;
    /// Client → server: finalize the named closed round.
    pub const FINALIZE: u8 = 0x04;
    /// Client → server: snapshot the named round to the checkpoint path.
    pub const CHECKPOINT: u8 = 0x05;
    /// Client → server: stop the daemon after this session.
    pub const SHUTDOWN: u8 = 0x06;
    /// Client → server: a routed batch of length-prefixed reports
    /// (unacknowledged).
    pub const REPORT_BATCH: u8 = 0x07;
    /// Client → server: barrier — acked once every prior frame of this
    /// session has been ingested.
    pub const SYNC: u8 = 0x08;
    /// Client → server: scrape the daemon's metrics registry (empty
    /// payload), answered with `STATS_REPLY`.
    pub const STATS: u8 = 0x09;
    /// Server → client: success, no payload.
    pub const ACK: u8 = 0x81;
    /// Server → client: refusal, code + message.
    pub const ERR: u8 = 0x82;
    /// Server → client: round intake summary.
    pub const SUMMARY: u8 = 0x83;
    /// Server → client: finalized adjacency view.
    pub const VIEW: u8 = 0x84;
    /// Server → client: finalized degree-vector totals.
    pub const DEGREE_SUMMARY: u8 = 0x85;
    /// Server → client: a metrics-registry snapshot (see
    /// [`super::encode_stats_reply`]).
    pub const STATS_REPLY: u8 = 0x86;
}

/// Record framing of the collector's write-ahead journal.
///
/// A WAL segment file is a stream of the **same** length-prefixed frames
/// the network codec speaks ([`write_frame`]/[`read_frame`]), preceded by
/// its own magic + version header — so journal replay inherits the
/// codec's totality discipline for free: a hostile length claim is a
/// typed refusal before any allocation, and a torn final record is
/// distinguishable from clean EOF at a frame boundary by
/// [`read_frame`]'s `Ok(None)`-vs-`UnexpectedEof` split.
///
/// These record kinds are deliberately a separate vocabulary from
/// [`frames`]: a journal byte stream is not a network capture, and the
/// wire-totality lint rules (`opcode-arm`/`opcode-proptest`) govern the
/// network vocabulary only. Every record's payload begins with the
/// round id as a varint, so truncation-tolerant scans can route records
/// without understanding every kind.
pub mod journal {
    /// Magic bytes opening a WAL segment file.
    pub const SEGMENT_MAGIC: [u8; 4] = *b"LDPW";
    /// Journal format version.
    pub const SEGMENT_VERSION: u8 = 1;
    /// A round was opened; payload = the `OPEN` frame payload verbatim.
    pub const REC_OPEN: u8 = 0x01;
    /// One routed report; payload = the `REPORT` frame payload verbatim.
    pub const REC_REPORT: u8 = 0x02;
    /// A routed report batch; payload = the `REPORT_BATCH` frame payload
    /// verbatim.
    pub const REC_BATCH: u8 = 0x03;
    /// Intake of the named round closed; payload = round id varint.
    pub const REC_CLOSE: u8 = 0x04;
    /// The named round finalized (left the registry); payload = round id
    /// varint.
    pub const REC_FINALIZE: u8 = 0x05;
    /// The named round's state through this point is captured by its
    /// checkpoint file — replay discards the round's earlier records and
    /// reloads the snapshot instead; payload = round id varint.
    pub const REC_CHECKPOINT: u8 = 0x06;
}

/// Typed decode/transport failures. Every malformed input maps to one of
/// these — the codec never panics on untrusted bytes.
#[derive(Debug)]
pub enum WireError {
    /// The stream header's magic bytes were not [`MAGIC`].
    BadMagic {
        /// The four bytes received instead.
        got: [u8; 4],
    },
    /// The peer speaks a protocol version *newer* than this codec.
    UnsupportedVersion {
        /// Version byte received.
        got: u8,
    },
    /// The peer speaks a protocol version *older* than this codec — its
    /// report frames would carry no round id, so multiplexed rounds
    /// cannot be served to it. The peer needs upgrading.
    VersionDowngrade {
        /// Version byte received.
        got: u8,
    },
    /// A frame's length prefix exceeds [`MAX_FRAME_LEN`] (or is zero).
    OversizeFrame {
        /// Claimed kind + payload length.
        len: usize,
    },
    /// The payload ended before the field being decoded.
    Truncated,
    /// A varint ran past 10 bytes or overflowed 64 bits.
    VarintOverflow,
    /// An unknown report channel tag.
    UnknownReportTag {
        /// Tag byte received.
        tag: u8,
    },
    /// A population or vector length exceeds the codec's sanity bound.
    OversizePopulation {
        /// Claimed population / length.
        claimed: u64,
    },
    /// A report batch claims more entries than [`MAX_REPORTS_PER_BATCH`].
    OversizeBatch {
        /// Claimed entry count.
        claimed: u64,
    },
    /// An adjacency row carried more words than its population allows.
    RowOverrun {
        /// Words transmitted.
        words: usize,
        /// Words a population of this size occupies.
        max_words: usize,
    },
    /// An adjacency row set bits at or beyond its population (non-canonical
    /// padding).
    BadPadding,
    /// Bytes remained after the last field of a payload.
    TrailingBytes {
        /// Number of unread bytes.
        extra: usize,
    },
    /// A field held a value its domain rejects (e.g. a keep probability
    /// outside `(0.5, 1)`).
    BadValue {
        /// Which field was malformed.
        field: &'static str,
    },
    /// An I/O failure underneath the codec.
    Io(std::io::ErrorKind),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad stream magic {got:02x?}"),
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (speaking {VERSION})")
            }
            WireError::VersionDowngrade { got } => {
                write!(
                    f,
                    "peer speaks wire version {got}, older than {VERSION}: its report \
                     frames carry no round id — upgrade the peer"
                )
            }
            WireError::OversizeFrame { len } => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            WireError::Truncated => write!(f, "payload truncated mid-field"),
            WireError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            WireError::UnknownReportTag { tag } => write!(f, "unknown report channel tag {tag}"),
            WireError::OversizePopulation { claimed } => {
                write!(
                    f,
                    "population/length {claimed} exceeds wire bound {MAX_WIRE_POPULATION}"
                )
            }
            WireError::OversizeBatch { claimed } => {
                write!(
                    f,
                    "report batch claims {claimed} entries, cap is {MAX_REPORTS_PER_BATCH}"
                )
            }
            WireError::RowOverrun { words, max_words } => {
                write!(
                    f,
                    "adjacency row has {words} words, population allows {max_words}"
                )
            }
            WireError::BadPadding => {
                write!(f, "adjacency row sets bits at or beyond its population")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last field")
            }
            WireError::BadValue { field } => write!(f, "field {field} holds an invalid value"),
            WireError::Io(kind) => write!(f, "i/o failure: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.kind())
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `buf`.
///
/// # Errors
/// [`WireError::Truncated`] on a short buffer, [`WireError::VarintOverflow`]
/// past 64 bits.
pub fn get_varint(buf: &mut &[u8]) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let (&byte, rest) = buf.split_first().ok_or(WireError::Truncated)?;
        *buf = rest;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::VarintOverflow)
}

/// Appends an `f64` as its little-endian bit pattern (bit-exact transport).
pub fn put_f64(v: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Reads an `f64` bit pattern, advancing `buf`.
///
/// # Errors
/// [`WireError::Truncated`] on a short buffer.
pub fn get_f64(buf: &mut &[u8]) -> Result<f64, WireError> {
    let (bytes, rest) = buf.split_at_checked(8).ok_or(WireError::Truncated)?;
    *buf = rest;
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

/// Appends a `u64` little-endian.
pub fn put_u64(v: u64, out: &mut Vec<u8>) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u64`, advancing `buf`.
///
/// # Errors
/// [`WireError::Truncated`] on a short buffer.
pub fn get_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    let (bytes, rest) = buf.split_at_checked(8).ok_or(WireError::Truncated)?;
    *buf = rest;
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(b))
}

/// Appends a whole `u64` slice little-endian — the bulk form of
/// [`put_u64`] for packed rows and matrices. One capacity reservation up
/// front and a tight fixed-stride loop the compiler vectorizes, instead
/// of a capacity check per word; on the 10k-user wire path this is
/// megabytes per round.
pub fn put_u64s(words: &[u64], out: &mut Vec<u8>) {
    out.reserve(words.len() * 8);
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Reads `dst.len()` little-endian `u64`s into `dst`, advancing `buf` —
/// the bulk form of [`get_u64`]: one bounds check for the whole block,
/// then a fixed-stride copy loop.
///
/// # Errors
/// [`WireError::Truncated`] if fewer than `8 * dst.len()` bytes remain.
pub fn get_u64s(buf: &mut &[u8], dst: &mut [u64]) -> Result<(), WireError> {
    let (bytes, rest) = buf
        .split_at_checked(dst.len() * 8)
        .ok_or(WireError::Truncated)?;
    *buf = rest;
    for (slot, chunk) in dst.iter_mut().zip(bytes.chunks_exact(8)) {
        let mut b = [0u8; 8];
        b.copy_from_slice(chunk);
        *slot = u64::from_le_bytes(b);
    }
    Ok(())
}

/// Asserts a payload was fully consumed.
///
/// # Errors
/// [`WireError::TrailingBytes`] if bytes remain.
pub fn expect_end(buf: &[u8]) -> Result<(), WireError> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(WireError::TrailingBytes { extra: buf.len() })
    }
}

// ---------------------------------------------------------------------------
// Stream header and frames
// ---------------------------------------------------------------------------

/// Writes the 6-byte versioned stream header.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_stream_header(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(&MAGIC)?;
    w.write_all(&[VERSION, 0])?;
    Ok(())
}

/// Reads and validates the peer's stream header.
///
/// # Errors
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] on a foreign
/// peer, I/O errors otherwise.
pub fn read_stream_header(r: &mut impl Read) -> Result<(), WireError> {
    let mut header = [0u8; 6];
    r.read_exact(&mut header)?;
    let got = [header[0], header[1], header[2], header[3]];
    if got != MAGIC {
        return Err(WireError::BadMagic { got });
    }
    if header[4] < VERSION {
        return Err(WireError::VersionDowngrade { got: header[4] });
    }
    if header[4] > VERSION {
        return Err(WireError::UnsupportedVersion { got: header[4] });
    }
    Ok(())
}

/// Writes one `kind + payload` frame with its length prefix.
///
/// # Errors
/// [`WireError::OversizeFrame`] if the payload exceeds [`MAX_FRAME_LEN`],
/// I/O errors otherwise.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<(), WireError> {
    let len = payload.len() + 1;
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizeFrame { len });
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(payload)?;
    Ok(())
}

/// Like [`write_frame`], but the payload arrives as two slices written
/// back to back — the batched report path emits a small count header in
/// front of a large accumulated entry buffer without copying the buffer
/// into a fresh payload allocation.
///
/// # Errors
/// [`WireError::OversizeFrame`] if the combined payload exceeds
/// [`MAX_FRAME_LEN`], I/O errors otherwise.
pub fn write_frame_split(
    w: &mut impl Write,
    kind: u8,
    head: &[u8],
    tail: &[u8],
) -> Result<(), WireError> {
    let len = head.len() + tail.len() + 1;
    if len > MAX_FRAME_LEN {
        return Err(WireError::OversizeFrame { len });
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[kind])?;
    w.write_all(head)?;
    w.write_all(tail)?;
    Ok(())
}

/// Reads one frame into `payload` (cleared and refilled), returning its
/// kind byte. Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
/// [`WireError::OversizeFrame`] on a hostile length prefix (checked before
/// any allocation), [`WireError::Io`] on transport failures or EOF inside
/// a frame.
pub fn read_frame(r: &mut impl Read, payload: &mut Vec<u8>) -> Result<Option<u8>, WireError> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_bytes)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(WireError::OversizeFrame { len });
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    payload.clear();
    payload.resize(len - 1, 0);
    r.read_exact(payload)?;
    Ok(Some(kind[0]))
}

/// Like `read_exact`, but distinguishes a clean EOF before the first byte
/// (`Ok(false)`) from one mid-buffer (an error).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(WireError::Io(std::io::ErrorKind::UnexpectedEof));
        }
        filled += n;
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Report payloads
// ---------------------------------------------------------------------------

const TAG_ADJACENCY: u8 = 0;
const TAG_DEGREE_VECTOR: u8 = 1;

/// Encodes one user's upload (see the module docs for the layout).
pub fn encode_report(user_id: u64, report: &UserReport, out: &mut Vec<u8>) {
    match report {
        UserReport::Adjacency(r) => encode_adjacency_report(user_id, r, out),
        UserReport::DegreeVector(v) => encode_degree_vector_report(user_id, v, out),
    }
}

/// The degree-vector arm of [`encode_report`], callable from a borrowed
/// slice (the collection client's hot send path streams vectors without
/// wrapping or cloning them).
pub fn encode_degree_vector_report(user_id: u64, vector: &[f64], out: &mut Vec<u8>) {
    put_varint(user_id, out);
    out.push(TAG_DEGREE_VECTOR);
    put_varint(vector.len() as u64, out);
    for &x in vector {
        put_f64(x, out);
    }
}

/// The adjacency arm of [`encode_report`], callable without wrapping the
/// report in a [`UserReport`] (the collection client's hot send path
/// streams borrowed [`AdjacencyReport`]s).
pub fn encode_adjacency_report(user_id: u64, report: &AdjacencyReport, out: &mut Vec<u8>) {
    put_varint(user_id, out);
    out.push(TAG_ADJACENCY);
    put_f64(report.degree, out);
    put_varint(report.population() as u64, out);
    let words = report.bits.words();
    let trimmed = words
        .iter()
        .rposition(|&w| w != 0)
        .map_or(0, |last| last + 1);
    put_varint(trimmed as u64, out);
    put_u64s(&words[..trimmed], out);
}

/// Decodes one report payload produced by [`encode_report`], returning the
/// user id and the canonical report.
///
/// # Errors
/// A typed [`WireError`] on any malformed input: truncation, unknown tags,
/// oversize populations, row overruns, non-canonical padding, or trailing
/// bytes. Never panics.
pub fn decode_report(mut buf: &[u8]) -> Result<(u64, UserReport), WireError> {
    let (user_id, report) = decode_report_prefix(&mut buf)?;
    expect_end(buf)?;
    Ok((user_id, report))
}

/// Like [`decode_report`], but reads one report off the front of `buf`
/// (advancing it) instead of requiring the buffer to end with it.
///
/// # Errors
/// As [`decode_report`], minus the trailing-bytes check.
pub fn decode_report_prefix(buf: &mut &[u8]) -> Result<(u64, UserReport), WireError> {
    let user_id = get_varint(buf)?;
    let (&tag, rest) = buf.split_first().ok_or(WireError::Truncated)?;
    *buf = rest;
    match tag {
        TAG_ADJACENCY => {
            let degree = get_f64(buf)?;
            let n = checked_len(get_varint(buf)?)?;
            let max_words = n.div_ceil(64);
            let words = get_varint(buf)? as usize;
            if words > max_words {
                return Err(WireError::RowOverrun { words, max_words });
            }
            let mut bits = BitSet::new(n);
            get_u64s(buf, &mut bits.words_mut()[..words])?;
            // Reject rows claiming slots the population does not have —
            // decoded reports are canonical by construction.
            let tail_start = bits.count_ones();
            bits.mask_tail();
            if bits.count_ones() != tail_start {
                return Err(WireError::BadPadding);
            }
            Ok((
                user_id,
                UserReport::Adjacency(AdjacencyReport::new(bits, degree)),
            ))
        }
        TAG_DEGREE_VECTOR => {
            let k = checked_len(get_varint(buf)?)?;
            if buf.len() < k.saturating_mul(8) {
                return Err(WireError::Truncated);
            }
            let mut v = Vec::with_capacity(k);
            for _ in 0..k {
                v.push(get_f64(buf)?);
            }
            Ok((user_id, UserReport::DegreeVector(v)))
        }
        tag => Err(WireError::UnknownReportTag { tag }),
    }
}

fn checked_len(claimed: u64) -> Result<usize, WireError> {
    if claimed > MAX_WIRE_POPULATION as u64 {
        return Err(WireError::OversizePopulation { claimed });
    }
    Ok(claimed as usize)
}

// ---------------------------------------------------------------------------
// Batched report payloads
// ---------------------------------------------------------------------------

/// Appends one batch entry — `varint len` + the [`encode_report`] bytes —
/// to `out`. `scratch` is a reusable buffer the entry is staged in (its
/// prior contents are discarded); callers on the hot path keep one scratch
/// allocation alive across a whole round.
pub fn encode_batch_entry(
    user_id: u64,
    report: &UserReport,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) {
    scratch.clear();
    encode_report(user_id, report, scratch);
    put_varint(scratch.len() as u64, out);
    out.extend_from_slice(scratch);
}

/// Encodes a whole `REPORT_BATCH` payload: `varint K` followed by `K`
/// length-prefixed [`encode_report`] entries. The per-entry length prefix
/// is what lets the decoder skip over one malformed entry without losing
/// frame sync on the rest of the batch.
pub fn encode_report_batch(entries: &[(u64, UserReport)], out: &mut Vec<u8>) {
    put_varint(entries.len() as u64, out);
    let mut scratch = Vec::new();
    for (user_id, report) in entries {
        encode_batch_entry(*user_id, report, &mut scratch, out);
    }
}

/// Incremental decoder over a `REPORT_BATCH` payload.
///
/// Yields each entry's decode result: an `Err` from a malformed *entry*
/// (isolated by its length prefix) leaves the iterator able to continue
/// with the next entry, while an `Err` in the batch *framing* (a bad
/// length varint, an entry running past the payload) fuses the decoder —
/// there is no trustworthy boundary to resume at.
#[derive(Debug)]
pub struct ReportBatch<'a> {
    buf: &'a [u8],
    remaining: usize,
    poisoned: bool,
}

impl ReportBatch<'_> {
    /// Entries not yet decoded.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Decodes the next entry; `None` once the claimed count is exhausted
    /// or after a framing error.
    pub fn next_entry(&mut self) -> Option<Result<(u64, UserReport), WireError>> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let len = match get_varint(&mut self.buf) {
            Ok(len) => len as usize,
            Err(e) => {
                self.poisoned = true;
                return Some(Err(e));
            }
        };
        let Some((entry, rest)) = self.buf.split_at_checked(len) else {
            self.poisoned = true;
            return Some(Err(WireError::Truncated));
        };
        self.buf = rest;
        Some(decode_report(entry))
    }

    /// Asserts the payload ended exactly at the last claimed entry.
    /// A no-op after a framing error (already surfaced by
    /// [`Self::next_entry`]).
    ///
    /// # Errors
    /// [`WireError::TrailingBytes`] on garbage after the last entry.
    pub fn finish(self) -> Result<(), WireError> {
        if self.poisoned {
            return Ok(());
        }
        expect_end(self.buf)
    }
}

/// Opens a `REPORT_BATCH` payload produced by [`encode_report_batch`],
/// proving the claimed entry count against [`MAX_REPORTS_PER_BATCH`]
/// before any per-entry work.
///
/// # Errors
/// [`WireError::Truncated`] / [`WireError::VarintOverflow`] on a malformed
/// count, [`WireError::OversizeBatch`] past the cap.
pub fn read_report_batch(payload: &[u8]) -> Result<ReportBatch<'_>, WireError> {
    let mut buf = payload;
    let claimed = get_varint(&mut buf)?;
    if claimed > MAX_REPORTS_PER_BATCH as u64 {
        return Err(WireError::OversizeBatch { claimed });
    }
    Ok(ReportBatch {
        buf,
        remaining: claimed as usize,
        poisoned: false,
    })
}

// ---------------------------------------------------------------------------
// Round-routed payloads (wire v2)
// ---------------------------------------------------------------------------

/// Encodes a round-routed `REPORT` payload: `varint round_id` followed by
/// the [`encode_report`] bytes. Since wire v2 every report-bearing frame
/// names its round explicitly, so a daemon multiplexing concurrent rounds
/// can route each frame without per-session round state.
pub fn encode_routed_report(round_id: u64, user_id: u64, report: &UserReport, out: &mut Vec<u8>) {
    put_varint(round_id, out);
    encode_report(user_id, report, out);
}

/// Decodes a payload produced by [`encode_routed_report`], returning the
/// round id, user id, and canonical report.
///
/// # Errors
/// As [`decode_report`], plus varint failures on the round id.
pub fn decode_routed_report(mut buf: &[u8]) -> Result<(u64, u64, UserReport), WireError> {
    let round_id = get_varint(&mut buf)?;
    let (user_id, report) = decode_report_prefix(&mut buf)?;
    expect_end(buf)?;
    Ok((round_id, user_id, report))
}

/// Encodes a round-routed `REPORT_BATCH` payload: `varint round_id`,
/// `varint K`, then `K` length-prefixed [`encode_report`] entries — the
/// v2 framing of [`encode_report_batch`].
pub fn encode_routed_batch(round_id: u64, entries: &[(u64, UserReport)], out: &mut Vec<u8>) {
    put_varint(round_id, out);
    encode_report_batch(entries, out);
}

/// Opens a payload produced by [`encode_routed_batch`], returning the
/// round id every entry belongs to and the incremental entry decoder.
///
/// # Errors
/// As [`read_report_batch`], plus varint failures on the round id.
pub fn read_routed_batch(payload: &[u8]) -> Result<(u64, ReportBatch<'_>), WireError> {
    let mut buf = payload;
    let round_id = get_varint(&mut buf)?;
    Ok((round_id, read_report_batch(buf)?))
}

// ---------------------------------------------------------------------------
// Stats-snapshot payload (STATS_REPLY)
// ---------------------------------------------------------------------------

/// Upper bound on the metric entries one `STATS_REPLY` may claim —
/// proved before any per-entry allocation, like every other length
/// claim in this codec.
pub const MAX_STATS_ENTRIES: usize = 4096;

/// Upper bound on a metric name's byte length.
pub const MAX_STATS_NAME_LEN: usize = 128;

/// Upper bound on a histogram's bucket count (a log₂-bucketed `u64`
/// histogram needs 65; the cap leaves headroom without letting a
/// hostile claim size an allocation).
pub const MAX_STATS_BUCKETS: usize = 128;

const STATS_TAG_COUNTER: u8 = 0;
const STATS_TAG_GAUGE: u8 = 1;
const STATS_TAG_HISTOGRAM: u8 = 2;

/// One scraped metric's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(u64),
    /// Log₂-bucketed histogram: sum of observations plus per-bucket
    /// counts (bucket `i` = values of bit length `i`, trailing zeros
    /// trimmed by the encoder).
    Histogram {
        /// Sum of every observed value.
        sum: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

/// One named metric in a `STATS_REPLY` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsEntry {
    /// Registered metric name (UTF-8, at most [`MAX_STATS_NAME_LEN`]
    /// bytes).
    pub name: String,
    /// The value at snapshot time.
    pub value: StatsValue,
}

/// Encodes a `STATS_REPLY` payload: `varint K`, then `K` entries of
/// `varint name_len + name bytes + tag u8 + value` (counter/gauge: one
/// varint; histogram: `varint sum`, `varint B`, `B` varints).
pub fn encode_stats_reply(entries: &[StatsEntry], out: &mut Vec<u8>) {
    put_varint(entries.len() as u64, out);
    for e in entries {
        put_varint(e.name.len() as u64, out);
        out.extend_from_slice(e.name.as_bytes());
        match &e.value {
            StatsValue::Counter(v) => {
                out.push(STATS_TAG_COUNTER);
                put_varint(*v, out);
            }
            StatsValue::Gauge(v) => {
                out.push(STATS_TAG_GAUGE);
                put_varint(*v, out);
            }
            StatsValue::Histogram { sum, buckets } => {
                out.push(STATS_TAG_HISTOGRAM);
                put_varint(*sum, out);
                put_varint(buckets.len() as u64, out);
                for &b in buckets {
                    put_varint(b, out);
                }
            }
        }
    }
}

/// Decodes a payload produced by [`encode_stats_reply`]. Total: every
/// length claim (entry count, name length, bucket count) is proved
/// against its `MAX_*` cap before the matching allocation, names must
/// be valid UTF-8, tags must be known, and trailing bytes are refused.
///
/// # Errors
/// A typed [`WireError`] on truncation, oversize claims, a non-UTF-8
/// name, an unknown value tag, or trailing bytes. Never panics.
pub fn decode_stats_reply(mut buf: &[u8]) -> Result<Vec<StatsEntry>, WireError> {
    let claimed = get_varint(&mut buf)?;
    if claimed > MAX_STATS_ENTRIES as u64 {
        return Err(WireError::OversizePopulation { claimed });
    }
    let mut entries = Vec::with_capacity(claimed as usize);
    for _ in 0..claimed {
        let name_len = get_varint(&mut buf)?;
        if name_len > MAX_STATS_NAME_LEN as u64 {
            return Err(WireError::OversizePopulation { claimed: name_len });
        }
        let (name_bytes, rest) = buf
            .split_at_checked(name_len as usize)
            .ok_or(WireError::Truncated)?;
        buf = rest;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| WireError::BadValue {
                field: "stats name",
            })?
            .to_string();
        let (&tag, rest) = buf.split_first().ok_or(WireError::Truncated)?;
        buf = rest;
        let value = match tag {
            STATS_TAG_COUNTER => StatsValue::Counter(get_varint(&mut buf)?),
            STATS_TAG_GAUGE => StatsValue::Gauge(get_varint(&mut buf)?),
            STATS_TAG_HISTOGRAM => {
                let sum = get_varint(&mut buf)?;
                let nbuckets = get_varint(&mut buf)?;
                if nbuckets > MAX_STATS_BUCKETS as u64 {
                    return Err(WireError::OversizePopulation { claimed: nbuckets });
                }
                let mut buckets = Vec::with_capacity(nbuckets as usize);
                for _ in 0..nbuckets {
                    buckets.push(get_varint(&mut buf)?);
                }
                StatsValue::Histogram { sum, buckets }
            }
            tag => return Err(WireError::UnknownReportTag { tag }),
        };
        entries.push(StatsEntry { name, value });
    }
    expect_end(buf)?;
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Finalized-view payload
// ---------------------------------------------------------------------------

/// Encodes a finalized [`PerturbedView`] — the collector's reply to a round
/// finalize on the adjacency channel. Layout: varint `N`, `f64` keep
/// probability, `N` × `f64` reported degrees, `N` × varint perturbed
/// degrees, `N·⌈N/64⌉` × `u64` matrix words.
pub fn encode_view(view: &PerturbedView, out: &mut Vec<u8>) {
    let n = view.num_users();
    put_varint(n as u64, out);
    put_f64(view.rr().p_keep(), out);
    for &d in view.reported_degrees() {
        put_f64(d, out);
    }
    for i in 0..n {
        put_varint(view.perturbed_degree(i) as u64, out);
    }
    out.reserve(n * view.matrix().words_per_row() * 8);
    for i in 0..n {
        put_u64s(view.matrix().row(i), out);
    }
}

/// Decodes a payload produced by [`encode_view`] back into the identical
/// [`PerturbedView`] (bit-exact degrees, matrix, and mechanism).
///
/// # Errors
/// A typed [`WireError`] on truncation, oversize populations, an invalid
/// keep probability, out-of-range degrees, or trailing bytes.
pub fn decode_view(mut buf: &[u8]) -> Result<PerturbedView, WireError> {
    let n = checked_len(get_varint(&mut buf)?)?;
    let p_keep = get_f64(&mut buf)?;
    let rr = RandomizedResponse::from_keep_probability(p_keep)
        .map_err(|_| WireError::BadValue { field: "p_keep" })?;
    if buf.len() < n.saturating_mul(8) {
        return Err(WireError::Truncated);
    }
    let mut reported = Vec::with_capacity(n);
    for _ in 0..n {
        reported.push(get_f64(&mut buf)?);
    }
    let mut perturbed = Vec::with_capacity(n);
    for _ in 0..n {
        let d = get_varint(&mut buf)? as usize;
        if d >= n.max(1) {
            return Err(WireError::BadValue {
                field: "perturbed_degree",
            });
        }
        perturbed.push(d);
    }
    // Prove the matrix words are actually present *before* allocating the
    // O(N²/8) matrix: a hostile peer claiming a huge `n` with a short
    // payload must fail here, not in the allocator.
    let wpr = n.div_ceil(64);
    if buf.len() < n.saturating_mul(wpr).saturating_mul(8) {
        return Err(WireError::Truncated);
    }
    let mut matrix = BitMatrix::new(n);
    get_u64s(&mut buf, matrix.rows_mut(0, n))?;
    expect_end(buf)?;
    Ok(PerturbedView::from_parts(matrix, reported, perturbed, rr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AdjacencyReport;

    fn adj(n: usize, ones: &[usize], degree: f64) -> UserReport {
        UserReport::Adjacency(AdjacencyReport::new(
            BitSet::from_indices(n, ones.iter().copied()),
            degree,
        ))
    }

    #[test]
    fn varint_roundtrip_and_bounds() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            out.clear();
            put_varint(v, &mut out);
            let mut buf = out.as_slice();
            assert_eq!(get_varint(&mut buf).unwrap(), v);
            assert!(buf.is_empty());
        }
        // 10 bytes of continuation overflow.
        let mut buf: &[u8] = &[0xff; 11];
        assert!(matches!(
            get_varint(&mut buf),
            Err(WireError::VarintOverflow)
        ));
        let mut buf: &[u8] = &[0x80];
        assert!(matches!(get_varint(&mut buf), Err(WireError::Truncated)));
    }

    #[test]
    fn report_roundtrips_both_variants() {
        for (id, report) in [
            (0u64, adj(130, &[0, 63, 64, 129], 4.5)),
            (77, adj(10, &[], 0.0)),
            (5, UserReport::DegreeVector(vec![1.5, -0.25, 0.0])),
            (u64::MAX, UserReport::DegreeVector(vec![])),
        ] {
            let mut out = Vec::new();
            encode_report(id, &report, &mut out);
            let (got_id, got) = decode_report(&out).unwrap();
            assert_eq!(got_id, id);
            match (&report, &got) {
                (UserReport::Adjacency(a), UserReport::Adjacency(b)) => {
                    assert_eq!(a.bits, b.bits);
                    assert_eq!(a.degree.to_bits(), b.degree.to_bits());
                }
                (UserReport::DegreeVector(a), UserReport::DegreeVector(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                _ => panic!("variant flipped in transit"),
            }
        }
    }

    #[test]
    fn trailing_zero_words_are_trimmed() {
        let mut sparse = Vec::new();
        encode_report(3, &adj(100_000, &[1], 1.0), &mut sparse);
        // 100k users = 1563 words; a single low bit must not ship them all.
        assert!(
            sparse.len() < 64,
            "sparse row encoded {} bytes",
            sparse.len()
        );
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        let mut good = Vec::new();
        encode_report(9, &adj(70, &[0, 69], 2.0), &mut good);
        // Truncations at every prefix length decode to an error, never panic.
        for cut in 0..good.len() {
            assert!(decode_report(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Unknown tag.
        let mut bad_tag = good.clone();
        bad_tag[1] = 9;
        assert!(matches!(
            decode_report(&bad_tag),
            Err(WireError::UnknownReportTag { tag: 9 })
        ));
        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            decode_report(&trailing),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn oversize_population_is_rejected_before_allocating() {
        let mut out = Vec::new();
        put_varint(4, &mut out); // user id
        out.push(TAG_ADJACENCY);
        put_f64(1.0, &mut out);
        put_varint(u64::MAX, &mut out); // absurd population
        assert!(matches!(
            decode_report(&out),
            Err(WireError::OversizePopulation { .. })
        ));
    }

    #[test]
    fn row_overrun_and_padding_are_rejected() {
        // Claim population 10 (1 word max) but ship 2 words.
        let mut out = Vec::new();
        put_varint(0, &mut out);
        out.push(TAG_ADJACENCY);
        put_f64(0.0, &mut out);
        put_varint(10, &mut out);
        put_varint(2, &mut out);
        put_u64(1, &mut out);
        put_u64(1, &mut out);
        assert!(matches!(
            decode_report(&out),
            Err(WireError::RowOverrun {
                words: 2,
                max_words: 1
            })
        ));
        // Bit 10 set in a population of 10.
        let mut out = Vec::new();
        put_varint(0, &mut out);
        out.push(TAG_ADJACENCY);
        put_f64(0.0, &mut out);
        put_varint(10, &mut out);
        put_varint(1, &mut out);
        put_u64(1 << 10, &mut out);
        assert!(matches!(decode_report(&out), Err(WireError::BadPadding)));
    }

    #[test]
    fn report_batch_roundtrips_and_counts() {
        let entries = vec![
            (0u64, adj(130, &[0, 64, 129], 2.0)),
            (7, UserReport::DegreeVector(vec![1.0, -2.5])),
            (130, adj(130, &[], 0.0)),
        ];
        let mut out = Vec::new();
        encode_report_batch(&entries, &mut out);
        let mut batch = read_report_batch(&out).unwrap();
        assert_eq!(batch.remaining(), 3);
        for (want_id, _) in &entries {
            let (id, _) = batch.next_entry().unwrap().unwrap();
            assert_eq!(id, *want_id);
        }
        assert!(batch.next_entry().is_none());
        batch.finish().unwrap();
    }

    #[test]
    fn report_batch_isolates_malformed_entries() {
        // Entry 2 of 3 carries garbage bytes; 1 and 3 still decode.
        let mut out = Vec::new();
        put_varint(3, &mut out);
        let mut scratch = Vec::new();
        encode_batch_entry(1, &adj(10, &[2], 1.0), &mut scratch, &mut out);
        put_varint(4, &mut out);
        out.extend_from_slice(&[0xff, 0xff, 0xff, 0xff]);
        encode_batch_entry(3, &adj(10, &[5], 1.0), &mut scratch, &mut out);

        let mut batch = read_report_batch(&out).unwrap();
        assert!(batch.next_entry().unwrap().is_ok());
        assert!(batch.next_entry().unwrap().is_err());
        let (id, _) = batch.next_entry().unwrap().unwrap();
        assert_eq!(id, 3);
        batch.finish().unwrap();
    }

    #[test]
    fn report_batch_framing_errors_fuse_and_cap_applies() {
        // Hostile count.
        let mut out = Vec::new();
        put_varint(MAX_REPORTS_PER_BATCH as u64 + 1, &mut out);
        assert!(matches!(
            read_report_batch(&out),
            Err(WireError::OversizeBatch { .. })
        ));
        // Entry length running past the payload fuses the decoder.
        let mut out = Vec::new();
        put_varint(2, &mut out);
        put_varint(100, &mut out);
        out.push(0);
        let mut batch = read_report_batch(&out).unwrap();
        assert!(matches!(
            batch.next_entry(),
            Some(Err(WireError::Truncated))
        ));
        assert!(batch.next_entry().is_none());
        batch.finish().unwrap(); // already surfaced; finish is a no-op
                                 // Trailing garbage after the last entry is typed.
        let mut out = Vec::new();
        encode_report_batch(&[(4, adj(5, &[1], 0.0))], &mut out);
        out.push(9);
        let mut batch = read_report_batch(&out).unwrap();
        assert!(batch.next_entry().unwrap().is_ok());
        assert!(matches!(
            batch.finish(),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn write_frame_split_matches_write_frame() {
        let mut whole = Vec::new();
        write_frame(&mut whole, 0x07, b"abcdef").unwrap();
        let mut split = Vec::new();
        write_frame_split(&mut split, 0x07, b"ab", b"cdef").unwrap();
        assert_eq!(whole, split);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut stream = Vec::new();
        write_stream_header(&mut stream).unwrap();
        write_frame(&mut stream, 0x42, b"hello").unwrap();
        write_frame(&mut stream, 0x01, b"").unwrap();

        let mut r = stream.as_slice();
        read_stream_header(&mut r).unwrap();
        let mut payload = Vec::new();
        assert_eq!(read_frame(&mut r, &mut payload).unwrap(), Some(0x42));
        assert_eq!(payload, b"hello");
        assert_eq!(read_frame(&mut r, &mut payload).unwrap(), Some(0x01));
        assert!(payload.is_empty());
        assert_eq!(read_frame(&mut r, &mut payload).unwrap(), None);
    }

    #[test]
    fn hostile_length_prefix_is_rejected_without_allocating() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = stream.as_slice();
        let mut payload = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut payload),
            Err(WireError::OversizeFrame { .. })
        ));
        assert!(payload.capacity() < MAX_FRAME_LEN);
    }

    #[test]
    fn foreign_streams_fail_the_handshake() {
        let mut r: &[u8] = b"HTTP/1";
        assert!(matches!(
            read_stream_header(&mut r),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad_version = Vec::new();
        bad_version.extend_from_slice(&MAGIC);
        bad_version.extend_from_slice(&[99, 0]);
        let mut r = bad_version.as_slice();
        assert!(matches!(
            read_stream_header(&mut r),
            Err(WireError::UnsupportedVersion { got: 99 })
        ));
        // A v1 peer (no round routing) is a typed *downgrade*, not a
        // generic version failure — the error names the remediation.
        let mut v1 = Vec::new();
        v1.extend_from_slice(&MAGIC);
        v1.extend_from_slice(&[1, 0]);
        let mut r = v1.as_slice();
        assert!(matches!(
            read_stream_header(&mut r),
            Err(WireError::VersionDowngrade { got: 1 })
        ));
    }

    #[test]
    fn routed_report_roundtrips_and_types_failures() {
        let report = adj(70, &[0, 69], 2.0);
        let mut out = Vec::new();
        encode_routed_report(913, 42, &report, &mut out);
        let (round_id, user_id, got) = decode_routed_report(&out).unwrap();
        assert_eq!(round_id, 913);
        assert_eq!(user_id, 42);
        let UserReport::Adjacency(got) = got else {
            panic!("variant flipped");
        };
        let UserReport::Adjacency(want) = &report else {
            unreachable!()
        };
        assert_eq!(got.bits, want.bits);
        // Truncations stay typed through the round-id prefix.
        for cut in 0..out.len() {
            assert!(decode_routed_report(&out[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn routed_batch_carries_its_round_id() {
        let entries = vec![
            (0u64, adj(20, &[3], 1.0)),
            (7, UserReport::DegreeVector(vec![0.5])),
        ];
        let mut out = Vec::new();
        encode_routed_batch(u64::MAX, &entries, &mut out);
        let (round_id, mut batch) = read_routed_batch(&out).unwrap();
        assert_eq!(round_id, u64::MAX);
        assert_eq!(batch.remaining(), 2);
        for (want_id, _) in &entries {
            assert_eq!(batch.next_entry().unwrap().unwrap().0, *want_id);
        }
        batch.finish().unwrap();
        assert!(matches!(read_routed_batch(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn stats_reply_roundtrips_and_rejects_hostile_claims() {
        let entries = vec![
            StatsEntry {
                name: "ingest_reports_folded_shard_0".to_string(),
                value: StatsValue::Counter(u64::MAX),
            },
            StatsEntry {
                name: "worker_queue_depth".to_string(),
                value: StatsValue::Gauge(7),
            },
            StatsEntry {
                name: "fold_nanos".to_string(),
                value: StatsValue::Histogram {
                    sum: 12_345,
                    buckets: vec![0, 1, 0, 9],
                },
            },
        ];
        let mut out = Vec::new();
        encode_stats_reply(&entries, &mut out);
        assert_eq!(decode_stats_reply(&out).unwrap(), entries);
        // Empty snapshot roundtrips too.
        let mut empty = Vec::new();
        encode_stats_reply(&[], &mut empty);
        assert_eq!(decode_stats_reply(&empty).unwrap(), Vec::new());
        // Every truncation is a typed error, never a panic.
        for cut in 0..out.len() {
            assert!(decode_stats_reply(&out[..cut]).is_err(), "cut at {cut}");
        }
        // Hostile entry count is refused before any per-entry work.
        let mut hostile = Vec::new();
        put_varint(MAX_STATS_ENTRIES as u64 + 1, &mut hostile);
        assert!(matches!(
            decode_stats_reply(&hostile),
            Err(WireError::OversizePopulation { .. })
        ));
        // Hostile bucket count is refused before allocation.
        let mut hostile = Vec::new();
        put_varint(1, &mut hostile);
        put_varint(1, &mut hostile);
        hostile.push(b'x');
        hostile.push(2); // histogram tag
        put_varint(0, &mut hostile); // sum
        put_varint(u64::MAX, &mut hostile); // absurd bucket count
        assert!(matches!(
            decode_stats_reply(&hostile),
            Err(WireError::OversizePopulation { .. })
        ));
        // Unknown value tag and trailing bytes are typed.
        let mut bad_tag = Vec::new();
        put_varint(1, &mut bad_tag);
        put_varint(1, &mut bad_tag);
        bad_tag.push(b'x');
        bad_tag.push(9);
        assert!(matches!(
            decode_stats_reply(&bad_tag),
            Err(WireError::UnknownReportTag { tag: 9 })
        ));
        let mut trailing = out.clone();
        trailing.push(0);
        assert!(matches!(
            decode_stats_reply(&trailing),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn eof_inside_a_frame_is_an_error_not_a_clean_end() {
        let mut stream = Vec::new();
        write_frame(&mut stream, 7, b"abcdef").unwrap();
        stream.truncate(stream.len() - 2);
        let mut r = stream.as_slice();
        let mut payload = Vec::new();
        assert!(matches!(
            read_frame(&mut r, &mut payload),
            Err(WireError::Io(std::io::ErrorKind::UnexpectedEof))
        ));
    }

    #[test]
    fn view_roundtrips_bit_for_bit() {
        use ldp_graph::generate::caveman_graph;
        use ldp_graph::Xoshiro256pp;

        let g = caveman_graph(3, 5);
        let proto = crate::LfGdpr::new(4.0).unwrap();
        let reports = proto.collect_honest(&g, &Xoshiro256pp::new(8));
        let view = proto.aggregate(&reports);
        let mut out = Vec::new();
        encode_view(&view, &mut out);
        let got = decode_view(&out).unwrap();
        assert_eq!(got.matrix(), view.matrix());
        assert_eq!(got.reported_degrees(), view.reported_degrees());
        for u in 0..view.num_users() {
            assert_eq!(got.perturbed_degree(u), view.perturbed_degree(u));
        }
        assert_eq!(got.rr().p_keep().to_bits(), view.rr().p_keep().to_bits());
    }

    #[test]
    fn view_decode_rejects_malformed_input() {
        assert!(matches!(decode_view(&[]), Err(WireError::Truncated)));
        let mut out = Vec::new();
        put_varint(2, &mut out);
        put_f64(0.3, &mut out); // invalid keep probability
        assert!(matches!(
            decode_view(&out),
            Err(WireError::BadValue { field: "p_keep" })
        ));
    }

    #[test]
    fn view_decode_checks_matrix_bytes_before_allocating() {
        // A hostile peer claims a huge population but ships only the
        // degree fields; the O(N²/8) matrix must never be allocated.
        let n: u64 = 4_000_000;
        let mut out = Vec::new();
        put_varint(n, &mut out);
        put_f64(0.9, &mut out);
        for _ in 0..n.min(100_000) {
            put_f64(1.0, &mut out);
        }
        // Fails on truncation (reported degrees short), not in the
        // allocator — and even with full degree arrays, the matrix-words
        // length check fires before BitMatrix::new.
        assert!(matches!(decode_view(&out), Err(WireError::Truncated)));
    }
}
