//! Seeded k-means over reported degree vectors (LDPGen's refinement step).

use rand::Rng;

/// The result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id per input vector, in `0..k`.
    pub assignment: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations executed before convergence or cut-off.
    pub iterations: usize,
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Lloyd's algorithm with random-point initialization. `k` is clamped to
/// the number of points; empty clusters are re-seeded from the point
/// farthest from its centroid, so every cluster id in `0..k` stays live.
pub fn kmeans<R: Rng>(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    rng: &mut R,
) -> KMeansResult {
    let n = points.len();
    if n == 0 || k == 0 {
        return KMeansResult {
            assignment: vec![0; n],
            centroids: Vec::new(),
            iterations: 0,
        };
    }
    let k = k.min(n);
    let dim = points[0].len();

    // Initialize centroids from k distinct random points.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut taken = std::collections::HashSet::new();
    while centroids.len() < k {
        let i = rng.gen_range(0..n);
        if taken.insert(i) {
            centroids.push(points[i].clone());
        }
    }

    let mut assignment = vec![0usize; n];
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (i, point) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    squared_distance(point, &centroids[a])
                        .total_cmp(&squared_distance(point, &centroids[b]))
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, point) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(point) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the point farthest from its
                // current centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        squared_distance(&points[a], &centroids[assignment[a]])
                            .total_cmp(&squared_distance(&points[b], &centroids[assignment[b]]))
                    })
                    .expect("n >= 1");
                centroids[c] = points[far].clone();
                changed = true;
            } else {
                for (s, c_val) in sums[c].iter().zip(centroids[c].iter_mut()) {
                    *c_val = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    KMeansResult {
        assignment,
        centroids,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::Xoshiro256pp;

    #[test]
    fn separates_two_obvious_clusters() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.0 + (i % 3) as f64 * 0.1, 0.0]);
        }
        for i in 0..20 {
            points.push(vec![10.0 + (i % 3) as f64 * 0.1, 10.0]);
        }
        let mut rng = Xoshiro256pp::new(1);
        let result = kmeans(&points, 2, 50, &mut rng);
        let first = result.assignment[0];
        assert!(result.assignment[..20].iter().all(|&a| a == first));
        let second = result.assignment[20];
        assert_ne!(first, second);
        assert!(result.assignment[20..].iter().all(|&a| a == second));
    }

    #[test]
    fn k_clamped_to_point_count() {
        let points = vec![vec![1.0], vec![2.0]];
        let mut rng = Xoshiro256pp::new(2);
        let result = kmeans(&points, 10, 10, &mut rng);
        assert!(result.assignment.iter().all(|&a| a < 2));
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let mut rng = Xoshiro256pp::new(3);
        let result = kmeans(&[], 3, 10, &mut rng);
        assert!(result.assignment.is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let points: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let r1 = kmeans(&points, 4, 30, &mut Xoshiro256pp::new(5));
        let r2 = kmeans(&points, 4, 30, &mut Xoshiro256pp::new(5));
        assert_eq!(r1.assignment, r2.assignment);
    }

    #[test]
    fn every_cluster_id_is_used_on_separable_data() {
        let mut points = Vec::new();
        for c in 0..4 {
            for _ in 0..10 {
                points.push(vec![c as f64 * 100.0]);
            }
        }
        let mut rng = Xoshiro256pp::new(8);
        let result = kmeans(&points, 4, 50, &mut rng);
        let used: std::collections::HashSet<_> = result.assignment.iter().collect();
        assert_eq!(used.len(), 4);
    }
}
