//! Block Chung–Lu graph synthesis from an LDPGen aggregate.
//!
//! For every (ordered) group pair `(a, b)` the server estimates the total
//! edge mass from the reported degree vectors:
//! `Ê_ab = ½(Σ_{i∈a} v_i[b] + Σ_{j∈b} v_j[a])` (both sides observed the
//! same edges, so averaging halves the noise). Edges are then placed by
//! sampling endpoints within each group proportionally to each member's
//! reported mass toward the partner group — degree-weighted (Chung–Lu)
//! rather than uniform, which preserves hubs.

use super::{DegreeVector, LdpGenAggregate};
use ldp_graph::{CsrGraph, GraphBuilder};
use rand::Rng;

/// Samples an index from `weights` proportionally (all weights ≥ 0; a zero
/// total falls back to uniform).
fn weighted_pick<R: Rng>(weights: &[f64], total: f64, rng: &mut R) -> usize {
    if total <= 0.0 || weights.is_empty() {
        return rng.gen_range(0..weights.len().max(1));
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Synthesizes the graph; see the module docs. Deterministic in `rng`.
pub fn synthesize_block_graph<R: Rng>(aggregate: &LdpGenAggregate, rng: &mut R) -> CsrGraph {
    let n = aggregate.groups.len();
    let k = aggregate.num_groups;
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (u, &g) in aggregate.groups.iter().enumerate() {
        members[g].push(u);
    }

    // Per-group-pair mass and per-node weights toward each group.
    // mass[a][b] = Σ_{i∈a} v_i[b].
    let mut mass = vec![vec![0.0f64; k]; k];
    for (u, v) in aggregate.degree_vectors.iter().enumerate() {
        let gu = aggregate.groups[u];
        for (b, &x) in v.iter().enumerate() {
            mass[gu][b] += x.max(0.0);
        }
    }

    let weight_of =
        |u: usize, toward: usize, vectors: &[DegreeVector]| -> f64 { vectors[u][toward].max(0.0) };

    let mut builder = GraphBuilder::new(n);
    for a in 0..k {
        for b in a..k {
            let estimated = if a == b {
                // Each intra-group edge is counted twice in mass[a][a].
                mass[a][a] / 2.0
            } else {
                (mass[a][b] + mass[b][a]) / 2.0
            };
            let edges = estimated.round().max(0.0) as usize;
            if edges == 0 || members[a].is_empty() || members[b].is_empty() {
                continue;
            }
            let weights_a: Vec<f64> = members[a]
                .iter()
                .map(|&u| weight_of(u, b, &aggregate.degree_vectors))
                .collect();
            let total_a: f64 = weights_a.iter().sum();
            let weights_b: Vec<f64> = members[b]
                .iter()
                .map(|&u| weight_of(u, a, &aggregate.degree_vectors))
                .collect();
            let total_b: f64 = weights_b.iter().sum();
            for _ in 0..edges {
                let u = members[a][weighted_pick(&weights_a, total_a, rng)];
                let v = members[b][weighted_pick(&weights_b, total_b, rng)];
                if u != v {
                    builder.add_edge(u, v);
                }
            }
        }
    }
    builder
        .build()
        .expect("synthesis endpoints are always in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::Xoshiro256pp;

    fn toy_aggregate() -> LdpGenAggregate {
        // 6 users, 2 groups: {0,1,2} and {3,4,5}. Dense inside group 0,
        // nothing inside group 1, a little across.
        let groups = vec![0, 0, 0, 1, 1, 1];
        let degree_vectors = vec![
            vec![2.0, 1.0],
            vec![2.0, 0.0],
            vec![2.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        ];
        LdpGenAggregate {
            groups,
            num_groups: 2,
            degree_vectors,
        }
    }

    #[test]
    fn respects_block_structure() {
        let agg = toy_aggregate();
        let mut rng = Xoshiro256pp::new(1);
        let g = synthesize_block_graph(&agg, &mut rng);
        assert_eq!(g.num_nodes(), 6);
        let mut intra0 = 0;
        let mut intra1 = 0;
        for (u, v) in g.edges() {
            let (gu, gv) = (agg.groups[u as usize], agg.groups[v as usize]);
            if gu == 0 && gv == 0 {
                intra0 += 1;
            }
            if gu == 1 && gv == 1 {
                intra1 += 1;
            }
        }
        assert!(
            intra0 >= intra1,
            "group 0 should be denser: {intra0} vs {intra1}"
        );
    }

    #[test]
    fn edge_mass_is_roughly_preserved() {
        let agg = toy_aggregate();
        let mut rng = Xoshiro256pp::new(2);
        let g = synthesize_block_graph(&agg, &mut rng);
        // Total claimed mass: intra-0 = 6/2 = 3, cross = (1 + 1)/2 = 1,
        // intra-1 = 0. Simple-graph dedup may drop a couple.
        assert!(g.num_edges() <= 4);
        assert!(g.num_edges() >= 2);
    }

    #[test]
    fn weighted_pick_prefers_heavy_indices() {
        let mut rng = Xoshiro256pp::new(3);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..50 {
            assert_eq!(weighted_pick(&weights, 10.0, &mut rng), 1);
        }
    }

    #[test]
    fn weighted_pick_zero_total_falls_back_to_uniform() {
        let mut rng = Xoshiro256pp::new(4);
        let weights = [0.0, 0.0];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(weighted_pick(&weights, 0.0, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn empty_aggregate_yields_empty_graph() {
        let agg = LdpGenAggregate {
            groups: vec![],
            num_groups: 0,
            degree_vectors: vec![],
        };
        let mut rng = Xoshiro256pp::new(5);
        let g = synthesize_block_graph(&agg, &mut rng);
        assert_eq!(g.num_nodes(), 0);
    }
}
