//! LDPGen (Qin et al., CCS'17): synthetic decentralized social graphs
//! under LDP.
//!
//! The protocol never collects adjacency bits. Instead:
//!
//! 1. the server assigns all users to `k₀` random initial groups;
//! 2. every user reports a Laplace-noisy *degree vector* — how many of
//!    their neighbors fall in each group (budget ε/2);
//! 3. the server k-means-clusters users by their reported vectors into `k₁`
//!    refined groups;
//! 4. users report noisy degree vectors toward the refined groups (budget
//!    ε/2), and the server clusters once more;
//! 5. the server estimates the edge mass between every group pair and
//!    synthesizes a graph by Chung–Lu sampling within/between groups.
//!
//! Relative to the original, the cluster-count selection is a fixed
//! heuristic (`k₁ ≈ √d̄`, clamped) rather than the paper's
//! information-theoretic optimizer, and the generator is block Chung–Lu
//! rather than full BTER; the attack surface — crafted degree vectors
//! biasing grouping and edge mass — is identical. DESIGN.md §2 records
//! this substitution.

mod cluster;
mod synthesis;

pub use cluster::{kmeans, KMeansResult};
pub use synthesis::synthesize_block_graph;

use ldp_graph::{CsrGraph, Xoshiro256pp};
use ldp_mechanisms::{sampling::sample_laplace_vec, LaplaceMechanism, MechanismError};
use rand::Rng;

pub use crate::report::DegreeVector;

/// The LDPGen protocol instance.
#[derive(Debug, Clone, Copy)]
pub struct LdpGen {
    epsilon: f64,
    k0: usize,
}

/// Server-side state after both phases: final grouping and per-user
/// reported degree vectors toward the final groups.
#[derive(Debug, Clone)]
pub struct LdpGenAggregate {
    /// Final group id of every user.
    pub groups: Vec<usize>,
    /// Number of final groups.
    pub num_groups: usize,
    /// Phase-2 degree vectors (one per user, toward the final groups).
    pub degree_vectors: Vec<DegreeVector>,
}

impl LdpGen {
    /// Creates the protocol with total budget ε and `k0` initial groups.
    ///
    /// # Errors
    /// Returns an error for non-positive ε or `k0 == 0`.
    pub fn new(epsilon: f64, k0: usize) -> Result<Self, MechanismError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(MechanismError::InvalidBudget(epsilon));
        }
        if k0 == 0 {
            return Err(MechanismError::InvalidParameter("k0 must be >= 1".into()));
        }
        Ok(LdpGen { epsilon, k0 })
    }

    /// Default configuration used in the experiments: ε with `k0 = 8`.
    ///
    /// # Errors
    /// Propagates invalid-ε errors.
    pub fn with_defaults(epsilon: f64) -> Result<Self, MechanismError> {
        Self::new(epsilon, 8)
    }

    /// Total privacy budget.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Initial group count `k0`.
    pub fn k0(&self) -> usize {
        self.k0
    }

    /// Per-phase Laplace mechanism: the degree vector has L1 sensitivity 1
    /// under edge-LDP (one edge moves one unit of count), and each of the
    /// two phases spends ε/2.
    fn phase_mechanism(&self) -> LaplaceMechanism {
        LaplaceMechanism::new(1.0, self.epsilon / 2.0).expect("validated at construction")
    }

    /// The honest degree vector of `node` toward `groups` (no noise).
    pub fn true_degree_vector(
        graph: &CsrGraph,
        node: usize,
        groups: &[usize],
        num_groups: usize,
    ) -> DegreeVector {
        let mut v = vec![0.0; num_groups];
        for &nb in graph.neighbors(node) {
            v[groups[nb as usize]] += 1.0;
        }
        v
    }

    /// One user's honest noisy report toward the given grouping.
    pub fn honest_degree_vector<R: Rng>(
        &self,
        graph: &CsrGraph,
        node: usize,
        groups: &[usize],
        num_groups: usize,
        rng: &mut R,
    ) -> DegreeVector {
        let mut v = Self::true_degree_vector(graph, node, groups, num_groups);
        let mech = self.phase_mechanism();
        sample_laplace_vec(&mut v, mech.scale(), rng);
        // Degrees cannot be negative; LDPGen post-processes to zero.
        for x in &mut v {
            *x = x.max(0.0);
        }
        v
    }

    /// Runs both phases over honest users, with optional crafted reports
    /// replacing the tail `crafted.len()` users' uploads in each phase
    /// (fake users — the attack entry point; pass an empty slice for the
    /// honest protocol). The crafting closure receives the current grouping
    /// and must return one degree vector per fake user.
    pub fn aggregate_with_crafted<F>(
        &self,
        graph: &CsrGraph,
        base_rng: &Xoshiro256pp,
        mut craft: F,
    ) -> LdpGenAggregate
    where
        F: FnMut(/*phase*/ usize, &[usize], usize) -> Vec<DegreeVector>,
    {
        // Phase 1: random initial grouping (stream shared with
        // `GraphLdpProtocol::collect_honest`).
        let groups0 = self.initial_groups(graph.num_nodes(), base_rng);
        let crafted1 = craft(1, &groups0, self.k0);
        let vectors1 = self.collect_phase(graph, base_rng, 1, &groups0, self.k0, crafted1);
        self.finish_from_phase1(graph, base_rng, vectors1, craft)
    }

    /// The phase-1 random grouping (stream `0xA11`); shared by the
    /// aggregation pipeline and `GraphLdpProtocol::collect_honest`.
    pub(crate) fn initial_groups(&self, n: usize, base_rng: &Xoshiro256pp) -> Vec<usize> {
        let mut seed_rng = base_rng.derive(0xA11);
        (0..n).map(|_| seed_rng.gen_range(0..self.k0)).collect()
    }

    /// Collects one phase's degree vectors: honest users first (per-node
    /// derived streams), then the crafted tail verbatim.
    fn collect_phase(
        &self,
        graph: &CsrGraph,
        base_rng: &Xoshiro256pp,
        phase: usize,
        groups: &[usize],
        num_groups: usize,
        crafted: Vec<DegreeVector>,
    ) -> Vec<DegreeVector> {
        let n = graph.num_nodes();
        let honest_count = n - crafted.len();
        let mut vectors: Vec<DegreeVector> = (0..honest_count)
            .map(|node| {
                let mut rng = base_rng.derive((phase as u64) << 32 | node as u64);
                self.honest_degree_vector(graph, node, groups, num_groups, &mut rng)
            })
            .collect();
        for v in crafted {
            assert_eq!(v.len(), num_groups, "crafted vector has wrong group count");
            vectors.push(v);
        }
        vectors
    }

    /// Runs everything after phase-1 collection: refined clustering, the
    /// phase-2 round (with optional crafted tail), and the final
    /// clustering. Split out so the [`crate::protocol::GraphLdpProtocol`]
    /// implementation can aggregate an externally supplied phase-1 upload
    /// set.
    pub(crate) fn finish_from_phase1<F>(
        &self,
        graph: &CsrGraph,
        base_rng: &Xoshiro256pp,
        vectors1: Vec<DegreeVector>,
        mut craft: F,
    ) -> LdpGenAggregate
    where
        F: FnMut(/*phase*/ usize, &[usize], usize) -> Vec<DegreeVector>,
    {
        let n = graph.num_nodes();
        // Refined cluster count: k1 ≈ √(average reported degree), clamped.
        let avg_degree: f64 =
            vectors1.iter().map(|v| v.iter().sum::<f64>()).sum::<f64>() / n.max(1) as f64;
        let k1 = (avg_degree.max(1.0).sqrt().round() as usize)
            .clamp(2, 32)
            .min(n.max(2));

        let mut kmeans_rng = base_rng.derive(0xB22);
        let phase1 = cluster::kmeans(&vectors1, k1, 25, &mut kmeans_rng);

        // Phase 2: report toward refined groups, cluster once more.
        let crafted2 = craft(2, &phase1.assignment, k1);
        let vectors2 = self.collect_phase(graph, base_rng, 2, &phase1.assignment, k1, crafted2);
        let mut kmeans_rng2 = base_rng.derive(0xC33);
        let phase2 = cluster::kmeans(&vectors2, k1, 25, &mut kmeans_rng2);

        LdpGenAggregate {
            groups: phase2.assignment,
            num_groups: k1,
            degree_vectors: vectors2,
        }
    }

    /// The honest protocol: aggregate without any crafted reports.
    pub fn aggregate(&self, graph: &CsrGraph, base_rng: &Xoshiro256pp) -> LdpGenAggregate {
        self.aggregate_with_crafted(graph, base_rng, |_, _, _| Vec::new())
    }

    /// Synthesizes the output graph from an aggregate. Deterministic in
    /// `rng`.
    pub fn synthesize<R: Rng>(&self, aggregate: &LdpGenAggregate, rng: &mut R) -> CsrGraph {
        synthesis::synthesize_block_graph(aggregate, rng)
    }

    /// Convenience: full honest pipeline from graph to synthetic graph.
    pub fn run(&self, graph: &CsrGraph, base_rng: &Xoshiro256pp) -> CsrGraph {
        let aggregate = self.aggregate(graph, base_rng);
        let mut rng = base_rng.derive(0xD44);
        self.synthesize(&aggregate, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::generate::caveman_graph;

    #[test]
    fn construction_validates() {
        assert!(LdpGen::new(0.0, 4).is_err());
        assert!(LdpGen::new(1.0, 0).is_err());
        assert!(LdpGen::new(1.0, 4).is_ok());
    }

    #[test]
    fn true_degree_vector_counts_neighbors_per_group() {
        let g = caveman_graph(2, 4);
        let groups: Vec<usize> = (0..8).map(|u| u / 4).collect();
        let v = LdpGen::true_degree_vector(&g, 0, &groups, 2);
        // Node 0: 3 intra-clique neighbors in group 0, 1 ring edge to group 1.
        assert_eq!(v[0], 3.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn honest_vector_is_noisy_but_nonnegative() {
        let g = caveman_graph(2, 4);
        let groups: Vec<usize> = (0..8).map(|u| u / 4).collect();
        let proto = LdpGen::new(2.0, 2).unwrap();
        let mut rng = Xoshiro256pp::new(5);
        for node in 0..8 {
            let v = proto.honest_degree_vector(&g, node, &groups, 2, &mut rng);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn synthetic_graph_matches_scale() {
        let g = caveman_graph(6, 8);
        let proto = LdpGen::with_defaults(6.0).unwrap();
        let base = Xoshiro256pp::new(9);
        let synth = proto.run(&g, &base);
        assert_eq!(synth.num_nodes(), g.num_nodes());
        let (e_true, e_synth) = (g.num_edges() as f64, synth.num_edges() as f64);
        assert!(
            (e_synth - e_true).abs() / e_true < 0.5,
            "synthetic edges {e_synth} should be within 50% of {e_true}"
        );
    }

    #[test]
    fn pipeline_is_deterministic() {
        let g = caveman_graph(4, 6);
        let proto = LdpGen::with_defaults(4.0).unwrap();
        let base = Xoshiro256pp::new(3);
        let s1 = proto.run(&g, &base);
        let s2 = proto.run(&g, &base);
        assert_eq!(s1, s2);
    }

    #[test]
    fn crafted_vectors_enter_the_aggregate() {
        let g = caveman_graph(4, 6);
        let proto = LdpGen::with_defaults(4.0).unwrap();
        let base = Xoshiro256pp::new(4);
        let agg = proto.aggregate_with_crafted(&g, &base, |_, _, num_groups| {
            vec![vec![99.0; num_groups]; 3]
        });
        let n = g.num_nodes();
        for v in &agg.degree_vectors[n - 3..] {
            assert!(v.iter().all(|&x| x == 99.0));
        }
    }
}
