//! Streaming, sharded report ingestion for LF-GDPR.
//!
//! [`PerturbedView::from_reports`] needs every report resident at once —
//! `O(N²)` bits for the reports on top of the `O(N²)`-bit matrix — which
//! caps experiment sizes far below what the server-side aggregate itself
//! requires. The [`StreamingAggregator`] removes that ceiling: reports are
//! consumed in bounded batches, each batch is folded in parallel into the
//! lower triangle of the aggregate [`BitMatrix`], and the batch can be
//! dropped before the next one is produced. Peak report memory is then
//! bounded by the batch size, never by the population.
//!
//! ## Slot ownership under batching
//!
//! The protocol's lower-triangle rule — the undirected slot `{i, j}` with
//! `i > j` is taken from report `i` — is what makes batched, parallel
//! folding race-free:
//!
//! * reports must arrive **in id order** (report `k` is the `k`-th one
//!   ingested), so a batch always covers a contiguous id range `lo..hi`;
//! * report `i` writes only row `i` of the matrix, and only its bits
//!   `j < i` — a word-level OR of the report's words `0..⌈i/64⌉` (the
//!   word-wise form of [`BitSet::iter_ones_below`]'s bound), never walking
//!   the tail of the vector;
//! * rows of a batch are disjoint contiguous word ranges, handed to worker
//!   threads as exclusive chunk slices
//!   ([`ldp_graph::runtime::parallel_chunks_mut`]) — no slot is ever
//!   written by two reports, in or across batches.
//!
//! Only [`StreamingAggregator::finalize`] mirrors the accumulated lower
//! triangle into the upper one and derives the per-node perturbed degrees,
//! producing the exact same [`PerturbedView`] — bit for bit — as the
//! one-shot path (`from_reports` is now a thin wrapper over this module;
//! the equivalence is pinned by `tests/proptest_ingest.rs`).

use crate::lfgdpr::PerturbedView;
use crate::report::AdjacencyReport;
use ldp_graph::runtime::{default_threads, parallel_chunks_mut, parallel_map, threads_for_work};
use ldp_graph::{BitMatrix, BitSet};
use ldp_mechanisms::RandomizedResponse;
use std::sync::atomic::{AtomicU64, Ordering};

/// Incremental builder of a [`PerturbedView`] from a stream of reports.
///
/// The population size is declared up front; reports are then ingested in
/// id order, one at a time or in batches, and [`Self::finalize`] yields
/// the view once all `N` reports have arrived. See the module docs for the
/// ownership argument that makes the batch fold embarrassingly parallel.
#[derive(Debug)]
pub struct StreamingAggregator {
    matrix: BitMatrix,
    reported_degrees: Vec<f64>,
    rr: RandomizedResponse,
    /// Running count of owned (lower-triangle) bits folded so far; equals
    /// the final edge count once every report is in.
    lower_edges: u64,
    threads: usize,
}

impl StreamingAggregator {
    /// Creates an aggregator for a population of `n` users, folding
    /// batches on [`default_threads`] workers.
    pub fn new(n: usize, rr: RandomizedResponse) -> Self {
        Self::with_threads(n, rr, default_threads())
    }

    /// Creates an aggregator folding batches on up to `threads` workers
    /// (clamped to at least one).
    pub fn with_threads(n: usize, rr: RandomizedResponse, threads: usize) -> Self {
        StreamingAggregator {
            matrix: BitMatrix::new(n),
            reported_degrees: Vec::with_capacity(n),
            rr,
            lower_edges: 0,
            threads: threads.max(1),
        }
    }

    /// Population size `N` declared at construction.
    pub fn population(&self) -> usize {
        self.matrix.num_nodes()
    }

    /// Number of reports ingested so far; the next report gets this id.
    pub fn ingested(&self) -> usize {
        self.reported_degrees.len()
    }

    /// Number of reports still outstanding before [`Self::finalize`].
    pub fn remaining(&self) -> usize {
        self.population() - self.ingested()
    }

    /// Running count of perturbed edges folded so far (each owned
    /// lower-triangle bit is one undirected edge).
    pub fn edges_ingested(&self) -> u64 {
        self.lower_edges
    }

    /// Running edge density over the slots owned by the reports ingested
    /// so far (`k` reports own the `k(k−1)/2` slots among themselves).
    /// Converges to the view's edge density as ingestion completes.
    pub fn running_edge_density(&self) -> f64 {
        let k = self.ingested() as f64;
        if k < 2.0 {
            return 0.0;
        }
        self.lower_edges as f64 / (k * (k - 1.0) / 2.0)
    }

    /// Ingests the next report (id = [`Self::ingested`]).
    ///
    /// # Panics
    /// Panics if the report spans a different population or the population
    /// is already fully ingested.
    pub fn ingest(&mut self, report: &AdjacencyReport) {
        self.ingest_batch(std::slice::from_ref(report));
    }

    /// Ingests the next `batch.len()` reports (ids
    /// `ingested()..ingested() + batch.len()`), folding their
    /// lower-triangle bits into the matrix in parallel.
    ///
    /// # Panics
    /// Panics if any report spans a different population, or if the batch
    /// would exceed the declared population.
    pub fn ingest_batch(&mut self, batch: &[AdjacencyReport]) {
        if batch.is_empty() {
            return;
        }
        let n = self.population();
        let lo = self.ingested();
        assert!(
            lo + batch.len() <= n,
            "batch of {} overruns the population: {lo} of {n} reports already ingested",
            batch.len()
        );
        for (k, report) in batch.iter().enumerate() {
            assert_eq!(
                report.population(),
                n,
                "report {} spans {} users but the aggregator spans {n}",
                lo + k,
                report.population()
            );
        }

        let wpr = self.matrix.words_per_row();
        // Report i only scans its first ⌈i/64⌉ words, so the batch's fold
        // work is ~avg(lo..hi)/64 words per row.
        let fold_words = (((lo + lo + batch.len()) / 2) / 64 + 1) * batch.len();
        let threads = threads_for_work(fold_words, self.threads);
        // Dynamic chunk claiming balances the triangular cost profile
        // (row i costs O(i/64) words to scan).
        let rows_per_chunk = batch.len().div_ceil(threads * 4).max(1);
        let edges = AtomicU64::new(0);
        let rows = self.matrix.rows_mut(lo, lo + batch.len());
        parallel_chunks_mut(rows, rows_per_chunk * wpr, threads, |chunk_idx, chunk| {
            let first = lo + chunk_idx * rows_per_chunk;
            let mut folded = 0u64;
            for (k, row) in chunk.chunks_mut(wpr).enumerate() {
                folded += fold_lower_bits(row, &batch[first + k - lo].bits, first + k);
            }
            edges.fetch_add(folded, Ordering::Relaxed);
        });
        self.lower_edges += edges.into_inner();
        self.reported_degrees.extend(batch.iter().map(|r| r.degree));
    }

    /// Completes aggregation: mirrors the lower triangle into a symmetric
    /// matrix, derives per-node perturbed degrees, and returns the view.
    ///
    /// # Panics
    /// Panics if fewer than `N` reports were ingested.
    pub fn finalize(self) -> PerturbedView {
        let n = self.population();
        assert_eq!(
            self.ingested(),
            n,
            "only {} of {n} reports ingested before finalize",
            self.ingested()
        );
        finalize_lower(self.matrix, self.reported_degrees, self.rr, self.threads)
    }
}

/// Finalizes a lower-triangle aggregate into a [`PerturbedView`]: mirrors
/// the accumulated lower triangle into a symmetric matrix, derives the
/// per-node perturbed degrees, and assembles the view.
///
/// This is the single finalization path of the server side — used by
/// [`StreamingAggregator::finalize`] and by the sharded collector service
/// (`ldp-collector`), so however the lower triangle was accumulated
/// (in-order batches, out-of-order shards), identical triangles finalize
/// into bit-identical views.
///
/// Mirroring is a sequential Θ(n²/128) word scan plus one write per set
/// bit (its scattered column writes cannot be partitioned without racing);
/// the degree derivation that follows scans the full `n·⌈n/64⌉` words, so
/// that one is parallelized (read-only) whenever it outweighs spawn cost.
///
/// # Panics
/// Panics if `reported_degrees` does not cover the matrix population.
pub fn finalize_lower(
    mut matrix: BitMatrix,
    reported_degrees: Vec<f64>,
    rr: RandomizedResponse,
    threads: usize,
) -> PerturbedView {
    let n = matrix.num_nodes();
    assert_eq!(
        reported_degrees.len(),
        n,
        "{} reported degrees for a population of {n}",
        reported_degrees.len()
    );
    matrix.mirror_lower();
    let scan_words = n * matrix.words_per_row();
    let threads = threads_for_work(scan_words, threads.max(1));
    let perturbed_degrees = {
        let matrix = &matrix;
        parallel_map((0..n).collect(), threads, |&u| matrix.degree(u))
    };
    PerturbedView::from_parts(matrix, reported_degrees, perturbed_degrees, rr)
}

/// Folds the lower-triangle bits of report `i` into its matrix row,
/// returning how many bits were set.
///
/// Slot ownership makes row `i` exactly the report's words `0..⌈i/64⌉`
/// (last word masked below bit `i%64`), so the fold is a word-level OR +
/// popcount — the word-wise form of [`BitSet::iter_ones_below`]'s bound;
/// bits at or above `i` (non-owned slots, including the self slot) are
/// never even scanned, and cost is independent of report density.
///
/// `row` must hold at least the `⌈i/64⌉` owned words (a full matrix row
/// works, and so does the sharded collector's triangular packing, which
/// allots exactly that many). Public because the collector service folds
/// out-of-order, shard-owned rows with this same kernel — one fold, one
/// bit pattern, wherever the report arrives.
///
/// # Panics
/// Panics if `row` is shorter than the owned word count or `bits` spans
/// fewer than `i` slots.
// ldp-lint: hot-path(begin) -- the per-report OR-fold kernel; the collector
// calls it under a shard mutex, so it must stay lock-free
pub fn fold_lower_bits(row: &mut [u64], bits: &BitSet, i: usize) -> u64 {
    let src = bits.words();
    let full = i / 64;
    let mut folded = 0u64;
    for (dst, &word) in row[..full].iter_mut().zip(src) {
        *dst |= word;
        folded += u64::from(word.count_ones());
    }
    let rem = i % 64;
    if rem != 0 {
        let masked = src[full] & ((1u64 << rem) - 1);
        row[full] |= masked;
        folded += u64::from(masked.count_ones());
    }
    folded
}
// ldp-lint: hot-path(end)

/// Aggregates a report stream into a [`PerturbedView`] while holding at
/// most `batch_size` reports in memory: the convenience driver for callers
/// that can produce reports lazily (network intake, on-the-fly
/// simulation).
///
/// # Panics
/// Panics if `batch_size` is zero, the stream yields a number of reports
/// other than `n`, or any report spans a population other than `n`.
pub fn aggregate_stream<I>(
    n: usize,
    rr: RandomizedResponse,
    batch_size: usize,
    reports: I,
) -> PerturbedView
where
    I: IntoIterator<Item = AdjacencyReport>,
{
    assert!(batch_size > 0, "batch_size must be positive");
    let mut agg = StreamingAggregator::new(n, rr);
    let mut buf: Vec<AdjacencyReport> = Vec::with_capacity(batch_size.min(n.max(1)));
    for report in reports {
        buf.push(report);
        if buf.len() == batch_size {
            agg.ingest_batch(&buf);
            buf.clear();
        }
    }
    agg.ingest_batch(&buf);
    agg.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_graph::BitSet;

    fn rr09() -> RandomizedResponse {
        RandomizedResponse::from_keep_probability(0.9).unwrap()
    }

    fn report(n: usize, ones: &[usize], degree: f64) -> AdjacencyReport {
        AdjacencyReport::new(BitSet::from_indices(n, ones.iter().copied()), degree)
    }

    #[test]
    fn batched_equals_oneshot_small() {
        let n = 5;
        let reports = vec![
            report(n, &[1, 4], 1.0),
            report(n, &[0], 1.5),
            report(n, &[0, 1, 3], 2.0),
            report(n, &[2], 0.5),
            report(n, &[0, 3], 2.0),
        ];
        let oneshot = PerturbedView::from_reports(&reports, rr09());
        for batch_size in 1..=n {
            let mut agg = StreamingAggregator::new(n, rr09());
            for chunk in reports.chunks(batch_size) {
                agg.ingest_batch(chunk);
            }
            let streamed = agg.finalize();
            assert_eq!(streamed.matrix(), oneshot.matrix(), "batch {batch_size}");
            assert_eq!(streamed.reported_degrees(), oneshot.reported_degrees());
            for u in 0..n {
                assert_eq!(streamed.perturbed_degree(u), oneshot.perturbed_degree(u));
            }
        }
    }

    #[test]
    fn single_ingest_matches_batch() {
        let n = 4;
        let reports = vec![
            report(n, &[], 0.0),
            report(n, &[0], 1.0),
            report(n, &[0, 1], 2.0),
            report(n, &[2], 1.0),
        ];
        let mut one_by_one = StreamingAggregator::new(n, rr09());
        for r in &reports {
            one_by_one.ingest(r);
        }
        let a = one_by_one.finalize();
        let b = PerturbedView::from_reports(&reports, rr09());
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn running_accumulators_track_progress() {
        let n = 4;
        let mut agg = StreamingAggregator::new(n, rr09());
        assert_eq!(agg.remaining(), 4);
        assert_eq!(agg.running_edge_density(), 0.0);
        agg.ingest(&report(n, &[], 0.0));
        agg.ingest(&report(n, &[0], 1.0));
        assert_eq!(agg.edges_ingested(), 1);
        assert!((agg.running_edge_density() - 1.0).abs() < 1e-12);
        agg.ingest_batch(&[report(n, &[0, 1], 2.0), report(n, &[], 0.0)]);
        assert_eq!(agg.edges_ingested(), 3);
        assert_eq!(agg.remaining(), 0);
        let view = agg.finalize();
        assert_eq!(view.matrix().num_edges(), 3);
    }

    #[test]
    fn non_owned_bits_are_ignored() {
        // Report 0 claims an edge to 3 (not owned) and its self slot would
        // be bit 0 (excluded by the bound).
        let n = 4;
        let mut agg = StreamingAggregator::new(n, rr09());
        agg.ingest_batch(&[
            report(n, &[3], 0.0),
            report(n, &[], 0.0),
            report(n, &[], 0.0),
            report(n, &[0, 1], 2.0),
        ]);
        assert_eq!(agg.edges_ingested(), 2);
        let view = agg.finalize();
        assert!(view.matrix().has_edge(3, 0) && view.matrix().has_edge(3, 1));
        assert!(!view.matrix().has_edge(0, 2));
    }

    #[test]
    fn aggregate_stream_bounded_buffer() {
        let n = 7;
        let reports: Vec<AdjacencyReport> = (0..n)
            .map(|i| {
                report(
                    n,
                    &(0..i).filter(|j| (i + j) % 2 == 0).collect::<Vec<_>>(),
                    i as f64,
                )
            })
            .collect();
        let oneshot = PerturbedView::from_reports(&reports, rr09());
        let streamed = aggregate_stream(n, rr09(), 3, reports);
        assert_eq!(streamed.matrix(), oneshot.matrix());
        assert_eq!(streamed.reported_degrees(), oneshot.reported_degrees());
    }

    #[test]
    fn zero_population() {
        let agg = StreamingAggregator::new(0, rr09());
        let view = agg.finalize();
        assert_eq!(view.num_users(), 0);
    }

    #[test]
    #[should_panic(expected = "spans")]
    fn population_mismatch_rejected() {
        let mut agg = StreamingAggregator::new(3, rr09());
        agg.ingest(&report(4, &[], 0.0));
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn overrun_rejected() {
        let mut agg = StreamingAggregator::new(1, rr09());
        agg.ingest_batch(&[report(1, &[], 0.0), report(1, &[], 0.0)]);
    }

    #[test]
    #[should_panic(expected = "before finalize")]
    fn incomplete_finalize_rejected() {
        let mut agg = StreamingAggregator::new(2, rr09());
        agg.ingest(&report(2, &[], 0.0));
        agg.finalize();
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_rejected() {
        aggregate_stream(1, rr09(), 0, std::iter::empty());
    }
}
