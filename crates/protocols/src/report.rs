//! The wire format of one LF-GDPR user report.
//!
//! Genuine users produce reports by perturbing their local view; fake users
//! *craft* reports directly (paper Fig. 2). Both travel in the same format,
//! which is precisely why the server cannot tell them apart a priori.

use ldp_graph::BitSet;

/// One user's upload: a (perturbed or crafted) adjacency bit vector and a
/// (perturbed or crafted) degree.
#[derive(Debug, Clone)]
pub struct UserReport {
    /// Adjacency bit vector over all `N` users. Only the entries toward
    /// lower ids are authoritative (lower-triangle ownership); the self
    /// slot is always zero.
    pub bits: BitSet,
    /// Reported degree, already rounded/clamped by the reporting side.
    pub degree: f64,
}

impl UserReport {
    /// Creates a report. The degree channel and the bit vector are
    /// independent in the protocol, so no cross-validation happens here —
    /// that is exactly the gap the degree-consistency defense (Detect2)
    /// later probes.
    pub fn new(bits: BitSet, degree: f64) -> Self {
        UserReport { bits, degree }
    }

    /// Number of users `N` this report spans.
    pub fn population(&self) -> usize {
        self.bits.capacity()
    }

    /// The degree implied by the bit vector alone (popcount). Detect2
    /// compares this against [`UserReport::degree`].
    pub fn bit_degree(&self) -> usize {
        self.bits.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = UserReport::new(BitSet::from_indices(10, [1, 3, 5]), 2.0);
        assert_eq!(r.population(), 10);
        assert_eq!(r.bit_degree(), 3);
        assert_eq!(r.degree, 2.0);
    }
}
