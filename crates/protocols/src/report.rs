//! The wire formats of one user upload.
//!
//! Genuine users produce reports by perturbing their local view; fake users
//! *craft* reports directly (paper Fig. 2). Both travel in the same format,
//! which is precisely why the server cannot tell them apart a priori.
//!
//! Two channels exist across the protocols this crate implements:
//!
//! * [`AdjacencyReport`] — LF-GDPR's upload: a randomized-response bit
//!   vector plus a Laplace-perturbed degree;
//! * a [`DegreeVector`] — LDPGen's upload: a Laplace-noisy count of the
//!   user's neighbors per server-defined group, refreshed every phase.
//!
//! [`UserReport`] unifies the two as one protocol-agnostic enum, which is
//! what the [`crate::protocol::GraphLdpProtocol`] trait and the attack
//! crafting callbacks exchange. Protocol internals keep working on the
//! concrete types; the enum only appears at the trait boundary.

use crate::protocol::ProtocolError;
use ldp_graph::BitSet;

/// One user's count of their neighbors per server-defined group (LDPGen).
pub type DegreeVector = Vec<f64>;

/// One LF-GDPR user's upload: a (perturbed or crafted) adjacency bit vector
/// and a (perturbed or crafted) degree.
#[derive(Debug, Clone)]
pub struct AdjacencyReport {
    /// Adjacency bit vector over all `N` users. Only the entries toward
    /// lower ids are authoritative (lower-triangle ownership); the self
    /// slot is always zero.
    pub bits: BitSet,
    /// Reported degree, already rounded/clamped by the reporting side.
    pub degree: f64,
}

impl AdjacencyReport {
    /// Creates a report. The degree channel and the bit vector are
    /// independent in the protocol, so no cross-validation happens here —
    /// that is exactly the gap the degree-consistency defense (Detect2)
    /// later probes.
    pub fn new(bits: BitSet, degree: f64) -> Self {
        AdjacencyReport { bits, degree }
    }

    /// Number of users `N` this report spans.
    pub fn population(&self) -> usize {
        self.bits.capacity()
    }

    /// The degree implied by the bit vector alone (popcount). Detect2
    /// compares this against [`AdjacencyReport::degree`].
    pub fn bit_degree(&self) -> usize {
        self.bits.count_ones()
    }
}

/// A protocol-agnostic user upload: the payload of one collection round.
///
/// This is the report type the [`crate::protocol::GraphLdpProtocol`] trait
/// exchanges — every protocol's channel is one variant, so crafting code
/// (the attack layer) can produce uploads without knowing which protocol
/// consumes them, and a protocol rejects foreign variants with a typed
/// [`ProtocolError::WrongReportKind`] instead of a panic.
#[derive(Debug, Clone)]
pub enum UserReport {
    /// An LF-GDPR adjacency-channel upload.
    Adjacency(AdjacencyReport),
    /// An LDPGen degree-vector upload toward the current grouping.
    DegreeVector(DegreeVector),
}

impl UserReport {
    /// Short name of the variant's channel, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            UserReport::Adjacency(_) => "adjacency",
            UserReport::DegreeVector(_) => "degree-vector",
        }
    }

    /// The adjacency report inside, if this is the LF-GDPR variant.
    pub fn as_adjacency(&self) -> Option<&AdjacencyReport> {
        match self {
            UserReport::Adjacency(r) => Some(r),
            UserReport::DegreeVector(_) => None,
        }
    }

    /// Unwraps the LF-GDPR variant.
    ///
    /// # Errors
    /// Returns [`ProtocolError::WrongReportKind`] on a degree-vector
    /// report.
    pub fn into_adjacency(self) -> Result<AdjacencyReport, ProtocolError> {
        match self {
            UserReport::Adjacency(r) => Ok(r),
            UserReport::DegreeVector(_) => Err(ProtocolError::WrongReportKind {
                expected: "adjacency",
                got: "degree-vector",
            }),
        }
    }

    /// The degree vector inside, if this is the LDPGen variant.
    pub fn as_degree_vector(&self) -> Option<&DegreeVector> {
        match self {
            UserReport::Adjacency(_) => None,
            UserReport::DegreeVector(v) => Some(v),
        }
    }

    /// Unwraps the LDPGen variant.
    ///
    /// # Errors
    /// Returns [`ProtocolError::WrongReportKind`] on an adjacency report.
    pub fn into_degree_vector(self) -> Result<DegreeVector, ProtocolError> {
        match self {
            UserReport::Adjacency(_) => Err(ProtocolError::WrongReportKind {
                expected: "degree-vector",
                got: "adjacency",
            }),
            UserReport::DegreeVector(v) => Ok(v),
        }
    }
}

impl From<AdjacencyReport> for UserReport {
    fn from(r: AdjacencyReport) -> Self {
        UserReport::Adjacency(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = AdjacencyReport::new(BitSet::from_indices(10, [1, 3, 5]), 2.0);
        assert_eq!(r.population(), 10);
        assert_eq!(r.bit_degree(), 3);
        assert_eq!(r.degree, 2.0);
    }

    #[test]
    fn enum_unwraps_the_right_variant() {
        let adj = UserReport::from(AdjacencyReport::new(BitSet::new(4), 1.0));
        assert_eq!(adj.kind(), "adjacency");
        assert!(adj.as_adjacency().is_some());
        assert!(adj.as_degree_vector().is_none());
        assert!(adj.clone().into_adjacency().is_ok());
        assert!(adj.into_degree_vector().is_err());

        let vec = UserReport::DegreeVector(vec![1.0, 0.0]);
        assert_eq!(vec.kind(), "degree-vector");
        assert!(vec.as_degree_vector().is_some());
        assert!(vec.clone().into_degree_vector().is_ok());
        assert!(vec.into_adjacency().is_err());
    }
}
