//! Property tests pinning the streaming aggregation engine to the one-shot
//! path: for any population, report contents, and batch size (including 1
//! and N), the streamed view is bit-for-bit identical — matrix, reported
//! degrees, perturbed degrees.

use ldp_graph::{BitSet, Xoshiro256pp};
use ldp_mechanisms::RandomizedResponse;
use ldp_protocols::ingest::aggregate_stream;
use ldp_protocols::{AdjacencyReport, PerturbedView, StreamingAggregator};
use proptest::prelude::*;
use rand::Rng;

/// Synthesizes `n` reports with word-level random bits at roughly the
/// given density (upper-triangle and self bits included on purpose — the
/// aggregator must ignore them identically on both paths).
fn random_reports(n: usize, density_shift: u32, seed: u64) -> Vec<AdjacencyReport> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|_| {
            let mut bits = BitSet::new(n);
            for w in bits.words_mut() {
                // AND-ing k independent words gives density 2^-k.
                let mut word = rng.gen::<u64>();
                for _ in 0..density_shift {
                    word &= rng.gen::<u64>();
                }
                *w = word;
            }
            bits.mask_tail();
            let degree = rng.gen_range(0.0..n.max(1) as f64);
            AdjacencyReport::new(bits, degree)
        })
        .collect()
}

fn rr() -> RandomizedResponse {
    RandomizedResponse::from_keep_probability(0.85).unwrap()
}

fn assert_views_identical(streamed: &PerturbedView, oneshot: &PerturbedView) -> Result<(), String> {
    if streamed.matrix() != oneshot.matrix() {
        return Err("matrices differ".into());
    }
    if streamed.reported_degrees() != oneshot.reported_degrees() {
        return Err("reported degrees differ".into());
    }
    for u in 0..oneshot.num_users() {
        if streamed.perturbed_degree(u) != oneshot.perturbed_degree(u) {
            return Err(format!("perturbed degree differs at node {u}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explicit batching: any batch size from 1 to n (and beyond) folds to
    /// the identical view.
    #[test]
    fn streamed_equals_oneshot(
        n in 0usize..70,
        batch in 1usize..80,
        density_shift in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        let reports = random_reports(n, density_shift, seed);
        let oneshot = PerturbedView::from_reports(&reports, rr());
        let mut agg = StreamingAggregator::new(n, rr());
        for chunk in reports.chunks(batch) {
            agg.ingest_batch(chunk);
        }
        let streamed = agg.finalize();
        if let Err(msg) = assert_views_identical(&streamed, &oneshot) {
            prop_assert!(false, "n={} batch={}: {}", n, batch, msg);
        }
        // Running accumulator converged to the true edge count.
        prop_assert_eq!(
            streamed.matrix().num_edges() as u64,
            {
                let mut check = StreamingAggregator::new(n, rr());
                check.ingest_batch(&reports);
                check.edges_ingested()
            }
        );
    }

    /// The lazy driver (bounded buffer) agrees too, and so does one-at-a-
    /// time ingestion.
    #[test]
    fn stream_driver_and_single_ingest_agree(
        n in 1usize..50,
        batch in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let reports = random_reports(n, 1, seed);
        let oneshot = PerturbedView::from_reports(&reports, rr());

        let driven = aggregate_stream(n, rr(), batch, reports.iter().cloned());
        if let Err(msg) = assert_views_identical(&driven, &oneshot) {
            prop_assert!(false, "driver n={} batch={}: {}", n, batch, msg);
        }

        let mut agg = StreamingAggregator::with_threads(n, rr(), 3);
        for r in &reports {
            agg.ingest(r);
        }
        let single = agg.finalize();
        if let Err(msg) = assert_views_identical(&single, &oneshot) {
            prop_assert!(false, "single n={}: {}", n, msg);
        }
    }
}
