//! Property tests for the wire codec: `encode ∘ decode == id` for
//! arbitrary [`UserReport`]s of both channel variants, plus hand-written
//! malformed-frame cases asserting typed [`WireError`]s — the decoder must
//! never panic, whatever bytes arrive.

use ldp_graph::{BitSet, Xoshiro256pp};
use ldp_protocols::wire::{
    self, decode_report, encode_report, put_f64, put_u64, put_varint, WireError,
};
use ldp_protocols::{AdjacencyReport, UserReport};
use proptest::prelude::*;
use rand::Rng;

/// Deterministically synthesizes an arbitrary report of either variant
/// from proptest-drawn knobs: population/length, bit density, degree.
fn synth_report(adjacency: bool, n: usize, density_shift: u32, seed: u64) -> UserReport {
    let mut rng = Xoshiro256pp::new(seed);
    if adjacency {
        let mut bits = BitSet::new(n);
        for w in bits.words_mut() {
            let mut word = rng.gen::<u64>();
            for _ in 0..density_shift {
                word &= rng.gen::<u64>();
            }
            *w = word;
        }
        bits.mask_tail();
        let degree = rng.gen_range(-1.0..n.max(1) as f64);
        UserReport::Adjacency(AdjacencyReport::new(bits, degree))
    } else {
        UserReport::DegreeVector((0..n).map(|_| rng.gen_range(-50.0..50.0)).collect())
    }
}

fn assert_identical(a: &UserReport, b: &UserReport) -> Result<(), String> {
    match (a, b) {
        (UserReport::Adjacency(x), UserReport::Adjacency(y)) => {
            if x.bits != y.bits {
                return Err("adjacency bits differ".into());
            }
            if x.degree.to_bits() != y.degree.to_bits() {
                return Err("degree bits differ".into());
            }
            Ok(())
        }
        (UserReport::DegreeVector(x), UserReport::DegreeVector(y)) => {
            if x.len() != y.len() {
                return Err("vector lengths differ".into());
            }
            for (i, (p, q)) in x.iter().zip(y).enumerate() {
                if p.to_bits() != q.to_bits() {
                    return Err(format!("vector entry {i} differs"));
                }
            }
            Ok(())
        }
        _ => Err("channel variant flipped in transit".into()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Round-trip identity over both variants, all population regimes the
    /// bit packing cares about (empty, sub-word, word-aligned, multi-word).
    #[test]
    fn encode_decode_is_identity(
        variant in 0usize..2,
        n in 0usize..300,
        density_shift in 0u32..4,
        seed in 0u64..u64::MAX,
        user_id in 0u64..u64::MAX,
    ) {
        let report = synth_report(variant == 0, n, density_shift, seed);
        let mut out = Vec::new();
        encode_report(user_id, &report, &mut out);
        let (got_id, got) = decode_report(&out).expect("well-formed frame must decode");
        prop_assert_eq!(got_id, user_id);
        if let Err(msg) = assert_identical(&report, &got) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Every truncation of a valid payload decodes to a typed error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncations_never_panic(
        variant in 0usize..2,
        n in 1usize..200,
        seed in 0u64..u64::MAX,
    ) {
        let report = synth_report(variant == 0, n, 1, seed);
        let mut out = Vec::new();
        encode_report(7, &report, &mut out);
        for cut in 0..out.len() {
            prop_assert!(decode_report(&out[..cut]).is_err(), "cut at {} decoded", cut);
        }
    }

    /// Arbitrary byte soup decodes to a typed error or a valid report —
    /// the decoder is total.
    #[test]
    fn random_bytes_never_panic(len in 0usize..96, seed in 0u64..u64::MAX) {
        let mut rng = Xoshiro256pp::new(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
        let _ = decode_report(&bytes);
    }

    /// REPORT_BATCH round-trip identity: an arbitrary mix of both report
    /// variants survives batch encode → decode bit for bit, ids and all.
    #[test]
    fn batch_encode_decode_is_identity(
        count in 0usize..12,
        n in 0usize..150,
        seed in 0u64..u64::MAX,
    ) {
        let entries: Vec<(u64, UserReport)> = (0..count)
            .map(|k| {
                let report = synth_report(k % 2 == 0, n, 1, seed ^ k as u64);
                (seed.wrapping_add(k as u64), report)
            })
            .collect();
        let mut out = Vec::new();
        wire::encode_report_batch(&entries, &mut out);
        let mut batch = wire::read_report_batch(&out).expect("well-formed batch");
        prop_assert_eq!(batch.remaining(), count);
        for (want_id, want) in &entries {
            let (id, got) = batch.next_entry()
                .expect("entry present")
                .expect("entry decodes");
            prop_assert_eq!(id, *want_id);
            if let Err(msg) = assert_identical(want, &got) {
                prop_assert!(false, "{}", msg);
            }
        }
        prop_assert!(batch.next_entry().is_none());
        prop_assert!(batch.finish().is_ok());
    }

    /// Every truncation of a valid batch payload surfaces a typed error
    /// (from the count, an entry frame, or an entry body) or decodes
    /// fewer entries — never a panic, never an entry that was not sent.
    #[test]
    fn batch_truncations_never_panic(
        count in 1usize..6,
        n in 1usize..100,
        seed in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        let entries: Vec<(u64, UserReport)> = (0..count)
            .map(|k| (k as u64, synth_report(k % 2 == 0, n, 1, seed ^ k as u64)))
            .collect();
        let mut out = Vec::new();
        wire::encode_report_batch(&entries, &mut out);
        let cut = ((out.len() as f64) * cut_frac) as usize;
        match wire::read_report_batch(&out[..cut.min(out.len() - 1)]) {
            Err(_) => {}
            Ok(mut batch) => {
                let mut decoded = 0usize;
                let mut errored = false;
                while let Some(entry) = batch.next_entry() {
                    match entry {
                        Ok(_) => decoded += 1,
                        Err(_) => errored = true,
                    }
                }
                // A strict prefix can never yield the whole batch clean.
                prop_assert!(decoded < count || errored || batch.finish().is_err());
            }
        }
    }

    /// Random byte soup through the batch decoder is total: typed errors
    /// or valid entries, never a panic, and never more entries than the
    /// (capped) count claims.
    #[test]
    fn batch_random_bytes_never_panic(len in 0usize..128, seed in 0u64..u64::MAX) {
        let mut rng = Xoshiro256pp::new(seed);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
        if let Ok(mut batch) = wire::read_report_batch(&bytes) {
            prop_assert!(batch.remaining() <= wire::MAX_REPORTS_PER_BATCH);
            let mut yielded = 0usize;
            while batch.next_entry().is_some() {
                yielded += 1;
            }
            prop_assert!(yielded <= wire::MAX_REPORTS_PER_BATCH);
        }
    }

    /// Routed (wire v2) round-trip identity: the round id survives next
    /// to arbitrary ids and reports of both variants.
    #[test]
    fn routed_encode_decode_is_identity(
        variant in 0usize..2,
        n in 0usize..200,
        seed in 0u64..u64::MAX,
        round_id in 0u64..u64::MAX,
        user_id in 0u64..u64::MAX,
    ) {
        let report = synth_report(variant == 0, n, 1, seed);
        let mut out = Vec::new();
        wire::encode_routed_report(round_id, user_id, &report, &mut out);
        let (got_round, got_id, got) =
            wire::decode_routed_report(&out).expect("well-formed frame must decode");
        prop_assert_eq!(got_round, round_id);
        prop_assert_eq!(got_id, user_id);
        if let Err(msg) = assert_identical(&report, &got) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// An interleaved stream of routed frames from random (round, user)
    /// pairs lands every payload with exactly the round id it was
    /// stamped with — routing is a pure function of the frame, never of
    /// decode order or of neighboring frames.
    #[test]
    fn interleaved_routed_frames_decode_to_their_own_round(
        frames in 1usize..24,
        rounds in 1u64..6,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Xoshiro256pp::new(seed);
        let stream: Vec<(u64, u64, UserReport)> = (0..frames)
            .map(|k| {
                let round = rng.gen_range(0..rounds);
                let report = synth_report(k % 2 == 0, 1 + (k % 40), 1, seed ^ k as u64);
                (round, k as u64, report)
            })
            .collect();
        let encoded: Vec<Vec<u8>> = stream
            .iter()
            .map(|(round, id, report)| {
                let mut out = Vec::new();
                wire::encode_routed_report(*round, *id, report, &mut out);
                out
            })
            .collect();
        for ((round, id, report), bytes) in stream.iter().zip(&encoded) {
            let (got_round, got_id, got) =
                wire::decode_routed_report(bytes).expect("decodes");
            prop_assert_eq!(got_round, *round);
            prop_assert_eq!(got_id, *id);
            if let Err(msg) = assert_identical(report, &got) {
                prop_assert!(false, "{}", msg);
            }
        }
    }

    /// Routed batch round-trip: the round id rides the batch head, every
    /// entry decodes bit-identically, and truncating the head yields a
    /// typed error, never a batch assigned to a garbage round.
    #[test]
    fn routed_batch_round_trips_and_truncations_are_typed(
        count in 0usize..10,
        n in 0usize..120,
        seed in 0u64..u64::MAX,
        round_id in 0u64..u64::MAX,
    ) {
        let entries: Vec<(u64, UserReport)> = (0..count)
            .map(|k| (k as u64, synth_report(k % 2 == 0, n, 1, seed ^ k as u64)))
            .collect();
        let mut out = Vec::new();
        wire::encode_routed_batch(round_id, &entries, &mut out);
        let (got_round, mut batch) = wire::read_routed_batch(&out).expect("well-formed batch");
        prop_assert_eq!(got_round, round_id);
        prop_assert_eq!(batch.remaining(), count);
        for (want_id, want) in &entries {
            let (id, got) = batch.next_entry()
                .expect("entry present")
                .expect("entry decodes");
            prop_assert_eq!(id, *want_id);
            if let Err(msg) = assert_identical(want, &got) {
                prop_assert!(false, "{}", msg);
            }
        }
        prop_assert!(batch.finish().is_ok());
        // Cut inside the routing varint: typed, not misrouted.
        prop_assert!(wire::read_routed_batch(&[]).is_err());
    }

    /// STATS_REPLY round-trip identity over arbitrary registries — every
    /// value kind (counter, gauge, histogram), arbitrary names and bucket
    /// shapes — and totality under truncation: every cut of a valid
    /// payload is a typed error, never a panic or a bogus success.
    #[test]
    fn stats_reply_round_trips_and_rejects_truncation(
        count in 0usize..10,
        buckets in 0usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = Xoshiro256pp::new(seed);
        let entries: Vec<wire::StatsEntry> = (0..count)
            .map(|k| {
                let name: String = (0..rng.gen_range(1..24usize))
                    .map(|_| char::from(b'a' + (rng.gen::<u64>() % 26) as u8))
                    .collect();
                let value = match k % 3 {
                    0 => wire::StatsValue::Counter(rng.gen::<u64>()),
                    1 => wire::StatsValue::Gauge(rng.gen::<u64>()),
                    _ => wire::StatsValue::Histogram {
                        sum: rng.gen::<u64>(),
                        buckets: (0..buckets).map(|_| rng.gen::<u64>()).collect(),
                    },
                };
                wire::StatsEntry { name, value }
            })
            .collect();
        let mut out = Vec::new();
        wire::encode_stats_reply(&entries, &mut out);
        prop_assert_eq!(
            wire::decode_stats_reply(&out).expect("well-formed reply decodes"),
            entries
        );
        for cut in 0..out.len() {
            prop_assert!(
                wire::decode_stats_reply(&out[..cut]).is_err(),
                "cut at {} decoded",
                cut
            );
        }
    }
}

/// Every opcode in [`wire::frames`] — request and reply — survives a
/// `write_frame` → `read_frame` round trip with an arbitrary payload, and
/// the kind bytes are pairwise distinct so no frame can masquerade as
/// another. This table is the proptest mention the `ldp-lint`
/// `opcode-proptest` rule demands for each constant: extending the
/// protocol without extending this test fails CI.
#[test]
fn every_frame_opcode_round_trips_and_is_distinct() {
    use wire::frames::{
        ACK, CHECKPOINT, CLOSE, DEGREE_SUMMARY, ERR, FINALIZE, OPEN, REPORT, REPORT_BATCH,
        SHUTDOWN, STATS, STATS_REPLY, SUMMARY, SYNC, VIEW,
    };
    let opcodes = [
        OPEN,
        REPORT,
        CLOSE,
        FINALIZE,
        CHECKPOINT,
        SHUTDOWN,
        REPORT_BATCH,
        SYNC,
        STATS,
        ACK,
        ERR,
        SUMMARY,
        VIEW,
        DEGREE_SUMMARY,
        STATS_REPLY,
    ];
    for (i, &a) in opcodes.iter().enumerate() {
        for &b in &opcodes[i + 1..] {
            assert_ne!(a, b, "duplicate opcode byte {a:#04x}");
        }
    }
    let mut rng = Xoshiro256pp::new(0xF4A3);
    for &kind in &opcodes {
        let payload: Vec<u8> = (0..rng.gen_range(0..64usize))
            .map(|_| rng.gen::<u64>() as u8)
            .collect();
        let mut stream = Vec::new();
        wire::write_frame(&mut stream, kind, &payload).expect("frame fits");
        let mut r = stream.as_slice();
        let mut got = Vec::new();
        let got_kind = wire::read_frame(&mut r, &mut got)
            .expect("well-formed frame")
            .expect("not eof");
        assert_eq!(got_kind, kind);
        assert_eq!(got, payload);
    }
}

#[test]
fn truncated_header_is_typed() {
    // A stream that dies inside the 6-byte header.
    let mut r: &[u8] = &wire::MAGIC[..3];
    assert!(matches!(
        wire::read_stream_header(&mut r),
        Err(WireError::Io(std::io::ErrorKind::UnexpectedEof))
    ));
}

#[test]
fn bad_version_is_typed() {
    let mut stream = Vec::new();
    stream.extend_from_slice(&wire::MAGIC);
    stream.extend_from_slice(&[wire::VERSION + 1, 0]);
    let mut r = stream.as_slice();
    assert!(matches!(
        wire::read_stream_header(&mut r),
        Err(WireError::UnsupportedVersion { .. })
    ));
}

#[test]
fn version_downgrade_is_typed_distinctly() {
    // A v1 peer has no round routing — its report frames would all land
    // on a garbage round. The handshake refuses it with a *downgrade*
    // error, distinct from the too-new case, carrying the offered
    // version.
    for old in 0..wire::VERSION {
        let mut stream = Vec::new();
        stream.extend_from_slice(&wire::MAGIC);
        stream.extend_from_slice(&[old, 0]);
        let mut r = stream.as_slice();
        match wire::read_stream_header(&mut r) {
            Err(WireError::VersionDowngrade { got }) => assert_eq!(got, old),
            other => panic!("version {old} accepted or mistyped: {other:?}"),
        }
    }
}

#[test]
fn routed_report_truncations_are_typed() {
    let report = synth_report(true, 33, 1, 4);
    let mut out = Vec::new();
    wire::encode_routed_report(712, 9, &report, &mut out);
    for cut in 0..out.len() {
        assert!(
            wire::decode_routed_report(&out[..cut]).is_err(),
            "cut at {cut} decoded"
        );
    }
}

#[test]
fn oversize_length_prefix_is_typed() {
    for claimed in [0u32, (wire::MAX_FRAME_LEN as u32) + 1, u32::MAX] {
        let stream = claimed.to_le_bytes();
        let mut r = stream.as_slice();
        let mut payload = Vec::new();
        assert!(
            matches!(
                wire::read_frame(&mut r, &mut payload),
                Err(WireError::OversizeFrame { .. })
            ),
            "length {claimed} accepted"
        );
    }
}

#[test]
fn duplicate_user_id_is_caught_by_the_collector_not_the_codec() {
    // The codec is stateless: two frames with the same id both decode; the
    // round engine (ldp-collector) owns duplicate rejection. Pin that the
    // codec at least preserves ids faithfully for it to key on.
    let report = synth_report(true, 64, 1, 9);
    let mut a = Vec::new();
    let mut b = Vec::new();
    encode_report(42, &report, &mut a);
    encode_report(42, &report, &mut b);
    assert_eq!(decode_report(&a).unwrap().0, decode_report(&b).unwrap().0);
}

#[test]
fn adversarial_row_claims_are_typed() {
    // Oversize population claim.
    let mut out = Vec::new();
    put_varint(1, &mut out);
    out.push(0); // adjacency tag
    put_f64(1.0, &mut out);
    put_varint((wire::MAX_WIRE_POPULATION as u64) + 1, &mut out);
    assert!(matches!(
        decode_report(&out),
        Err(WireError::OversizePopulation { .. })
    ));

    // More words than the population allows.
    let mut out = Vec::new();
    put_varint(1, &mut out);
    out.push(0);
    put_f64(1.0, &mut out);
    put_varint(64, &mut out); // one word
    put_varint(3, &mut out); // but three shipped
    for _ in 0..3 {
        put_u64(u64::MAX, &mut out);
    }
    assert!(matches!(
        decode_report(&out),
        Err(WireError::RowOverrun { .. })
    ));

    // Padding bits at/beyond the population.
    let mut out = Vec::new();
    put_varint(1, &mut out);
    out.push(0);
    put_f64(1.0, &mut out);
    put_varint(5, &mut out);
    put_varint(1, &mut out);
    put_u64(1 << 5, &mut out);
    assert!(matches!(decode_report(&out), Err(WireError::BadPadding)));
}
