//! # ldp-obs
//!
//! The observability plane: a std-only metrics registry and structured
//! trace ring for the collection daemon, hand-rolled on atomics (the
//! workspace is hermetic — no `tracing`, no `prometheus`).
//!
//! ## Hot-path discipline
//!
//! Everything a daemon hot path touches is a pre-registered
//! [`AtomicU64`] cell behind an `Arc` handle: incrementing a
//! [`Counter`], moving a [`Gauge`], or observing into a [`Histogram`]
//! is one (or two) `Relaxed` read-modify-writes — **zero allocation,
//! zero locks, zero fences**. Registration happens once, at daemon or
//! round construction ([`Registry::counter`] and friends return the
//! shared handle); the registry itself is only walked on the cold
//! scrape path ([`Registry::snapshot`] / [`Registry::render_text`]).
//! `ldp-lint`'s `hot-path-ordering` rule mechanically enforces the
//! relaxed-only discipline inside marked fold regions.
//!
//! ## Determinism carve-out
//!
//! This crate is deliberately **outside the determinism domain** that
//! DESIGN.md §3 pins for the modelled crates: trace events carry real
//! monotonic timestamps ([`ring::TraceRing`] stamps microseconds since
//! ring construction), and scrape output depends on wall-clock
//! interleaving. Nothing here feeds a modelled value — metrics observe
//! the system, they never steer it — which is why `ldp-lint`'s
//! `wall-clock` rule scopes `crates/obs/src/` out (see DESIGN.md §10).
//!
//! ## Snapshot semantics
//!
//! Snapshots read each cell with `Relaxed` loads and make no attempt at
//! a cross-cell atomic cut: counters are monotone, so a snapshot taken
//! during ingest is a valid lower bound, and one taken after a `SYNC` /
//! `CLOSE` barrier is exact (the collector's chaos suite pins that
//! reconciliation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ring;

pub use ring::{TraceEvent, TraceRecord, TraceRing};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets a [`Histogram`] keeps: bucket `i` counts
/// values whose bit length is `i` (so bucket 0 is exactly `v == 0`, and
/// bucket `i ≥ 1` covers `2^(i-1) ..= 2^i - 1`); 64-bit values need 65.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotone event counter: one relaxed `fetch_add` per tick.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n`, returning the **previous** value — the return value is
    /// what lets a hot path sample every k-th event without a second
    /// atomic (`if m.probe.add(1) & 63 == 0 { … }`).
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.cell.fetch_add(n, Ordering::Relaxed)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Current value (relaxed load).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, bytes in use).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicU64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Moves the gauge up by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Moves the gauge down by `n` (callers keep add/sub balanced; a
    /// transient underflow would wrap, so paired sites must match).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value (relaxed load).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram: fixed storage, no allocation, one bucket
/// increment plus count/sum updates per observation — all `Relaxed`.
///
/// The bucketing is deliberately coarse (powers of two): latencies and
/// queue depths in this system span orders of magnitude, and the scrape
/// side wants a stable, bounded wire encoding rather than quantile
/// sketches.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh histogram with every bucket at zero.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Relaxed snapshot: `(sum, buckets)` with trailing zero buckets
    /// trimmed (the wire encoding ships only occupied prefixes).
    pub fn snapshot(&self) -> (u64, Vec<u64>) {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        (self.sum(), buckets)
    }
}

/// One metric's value in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotone counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(u64),
    /// Histogram: sum of observations plus the log₂ bucket counts
    /// (index = bit length of the observed value, trailing zeros
    /// trimmed).
    Histogram {
        /// Sum of every observed value.
        sum: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

/// One named metric in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// The name the metric was registered under.
    pub name: String,
    /// Its value at snapshot time.
    pub value: SampleValue,
}

/// A registered metric handle (what the registry walks at scrape time).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The pre-registration surface: metrics are created by name **once**,
/// at construction time, and the returned `Arc` handles are what hot
/// paths hold. After construction the registry is immutable, so
/// snapshotting and rendering never race a registration.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Vec<(String, Metric)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers a counter under `name` and returns its shared handle.
    pub fn counter(&mut self, name: impl Into<String>) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.entries.push((name.into(), Metric::Counter(c.clone())));
        c
    }

    /// Registers a gauge under `name` and returns its shared handle.
    pub fn gauge(&mut self, name: impl Into<String>) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.entries.push((name.into(), Metric::Gauge(g.clone())));
        g
    }

    /// Registers a histogram under `name` and returns its shared handle.
    pub fn histogram(&mut self, name: impl Into<String>) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.entries
            .push((name.into(), Metric::Histogram(h.clone())));
        h
    }

    /// Registered metric count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Relaxed point-in-time snapshot of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> Vec<Sample> {
        self.entries
            .iter()
            .map(|(name, metric)| Sample {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let (sum, buckets) = h.snapshot();
                        SampleValue::Histogram { sum, buckets }
                    }
                },
            })
            .collect()
    }

    /// Renders the registry as Prometheus-style text exposition lines
    /// (`# TYPE` comments, cumulative `_bucket{le="…"}` series with a
    /// `+Inf` terminator, `_sum`/`_count` companions). Histograms label
    /// bucket `i` with its inclusive upper bound `2^i − 1`.
    pub fn render_text(&self) -> String {
        render_samples(&self.snapshot())
    }
}

/// Renders a snapshot (local or decoded off the wire) as
/// Prometheus-style text lines — the shared formatter behind
/// [`Registry::render_text`] and the load generator's `--dump-metrics`.
pub fn render_samples(samples: &[Sample]) -> String {
    let mut out = String::new();
    for s in samples {
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("# TYPE {} counter\n{} {}\n", s.name, s.name, v));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {} gauge\n{} {}\n", s.name, s.name, v));
            }
            SampleValue::Histogram { sum, buckets } => {
                out.push_str(&format!("# TYPE {} histogram\n", s.name));
                let mut cumulative = 0u64;
                for (i, b) in buckets.iter().enumerate() {
                    cumulative = cumulative.wrapping_add(*b);
                    if *b == 0 {
                        continue;
                    }
                    let le = if i == 0 {
                        0
                    } else if i >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    };
                    out.push_str(&format!(
                        "{}_bucket{{le=\"{}\"}} {}\n",
                        s.name, le, cumulative
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{{le=\"+Inf\"}} {}\n{}_sum {}\n{}_count {}\n",
                    s.name, cumulative, s.name, sum, s.name, cumulative
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_are_exact_under_contention() {
        let mut reg = Registry::new();
        let c = reg.counter("hits");
        let g = reg.gauge("depth");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                let g = g.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                        g.add(2);
                        g.sub(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(g.get(), 80_000);
        let snap = reg.snapshot();
        assert_eq!(snap[0].value, SampleValue::Counter(80_000));
        assert_eq!(snap[1].value, SampleValue::Gauge(80_000));
    }

    #[test]
    fn counter_add_returns_prior_for_sampling() {
        let c = Counter::new();
        assert_eq!(c.add(1), 0);
        assert_eq!(c.add(5), 1);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::new();
        h.observe(0); // bucket 0
        h.observe(1); // bucket 1
        h.observe(2); // bucket 2
        h.observe(3); // bucket 2
        h.observe(1024); // bucket 11
        h.observe(u64::MAX); // bucket 64
        let (sum, buckets) = h.snapshot();
        assert_eq!(
            sum,
            0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX)
        );
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS); // MAX occupies the last
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 1);
        assert_eq!(buckets[2], 2);
        assert_eq!(buckets[11], 1);
        assert_eq!(buckets[64], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_snapshot_trims_trailing_zero_buckets() {
        let h = Histogram::new();
        h.observe(5); // bucket 3
        let (_, buckets) = h.snapshot();
        assert_eq!(buckets, vec![0, 0, 0, 1]);
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let mut reg = Registry::new();
        let c = reg.counter("ingest_reports_folded");
        let g = reg.gauge("worker_queue_depth");
        let h = reg.histogram("fold_nanos");
        c.add(42);
        g.set(3);
        h.observe(0);
        h.observe(100); // bucket 7, le = 127
        let text = reg.render_text();
        assert!(text.contains("# TYPE ingest_reports_folded counter\n"));
        assert!(text.contains("ingest_reports_folded 42\n"));
        assert!(text.contains("worker_queue_depth 3\n"));
        assert!(text.contains("fold_nanos_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("fold_nanos_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("fold_nanos_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("fold_nanos_sum 100\n"));
        assert!(text.contains("fold_nanos_count 2\n"));
    }
}
