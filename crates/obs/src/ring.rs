//! A fixed-capacity, lock-free ring of typed trace events.
//!
//! The daemon's lifecycle plane emits structured events — sessions
//! accepted and refused, frames decoded, round state transitions,
//! checkpoint quiescence, typed refusals — into a [`TraceRing`]:
//! writers claim a monotonic sequence number with one relaxed
//! `fetch_add` and publish into the slot it addresses under a per-slot
//! seqlock (an odd/even version counter), so recording never blocks and
//! never allocates. The ring keeps the **latest** `capacity` events;
//! older ones are overwritten, and [`TraceRing::recorded`] says how
//! many were ever emitted.
//!
//! Events carry real timestamps (microseconds since ring construction,
//! from a monotonic [`Instant`]) — this module is the documented
//! wall-clock carve-out of DESIGN.md §10: trace output observes the
//! schedule, it never feeds a modelled value.
//!
//! Readers ([`TraceRing::snapshot`]) validate each slot's version
//! before and after copying it and drop slots a writer raced; a torn
//! event is discarded, never misreported. The one residual window —
//! two writers a full `capacity` apart finishing interleaved on the
//! same slot — is accepted for a diagnostic ring.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::time::Instant;

/// A typed lifecycle event. The variants are the collector's trace
/// vocabulary; payload fields are deliberately small fixed words so an
/// event encodes into three `u64` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A connection passed admission and entered the worker pool.
    SessionAccepted {
        /// Sessions active after this accept.
        active: u64,
    },
    /// A connection was refused at the session cap (typed `SESSION_CAP`).
    SessionRefused {
        /// Sessions active at refusal time.
        active: u64,
    },
    /// A complete frame was decoded off a session.
    FrameDecoded {
        /// Wire frame kind byte.
        kind: u8,
        /// Payload length in bytes.
        len: u64,
    },
    /// A round was opened.
    RoundOpened {
        /// Round id.
        round: u64,
        /// Owning tenant.
        tenant: u64,
    },
    /// A round's intake was closed.
    RoundClosed {
        /// Round id.
        round: u64,
        /// Reports accepted at close.
        accepted: u64,
    },
    /// A round was finalized and left the registry.
    RoundFinalized {
        /// Round id.
        round: u64,
    },
    /// A checkpoint began quiescing the round (write lock taken).
    QuiesceBegin {
        /// Round id.
        round: u64,
    },
    /// The checkpoint snapshot finished and ingest resumed.
    QuiesceEnd {
        /// Round id.
        round: u64,
    },
    /// A typed `ERR` frame was emitted to some session.
    ErrEmitted {
        /// The `server::codes` refusal code.
        code: u8,
    },
    /// A stalled session (no progress mid-frame) was reaped.
    StallReaped {
        /// Sessions active after the reap.
        active: u64,
    },
    /// A round was rebuilt from the data dir at startup (checkpoint
    /// load plus journal-tail replay).
    RoundRecovered {
        /// Round id.
        round: u64,
        /// Journal records re-applied for this round.
        replayed: u64,
    },
    /// Startup recovery finished scanning the data dir.
    RecoveryComplete {
        /// Rounds rebuilt.
        rounds: u64,
        /// Journal records re-applied in total.
        replayed: u64,
    },
}

const KIND_SESSION_ACCEPTED: u64 = 1;
const KIND_SESSION_REFUSED: u64 = 2;
const KIND_FRAME_DECODED: u64 = 3;
const KIND_ROUND_OPENED: u64 = 4;
const KIND_ROUND_CLOSED: u64 = 5;
const KIND_ROUND_FINALIZED: u64 = 6;
const KIND_QUIESCE_BEGIN: u64 = 7;
const KIND_QUIESCE_END: u64 = 8;
const KIND_ERR_EMITTED: u64 = 9;
const KIND_STALL_REAPED: u64 = 10;
const KIND_ROUND_RECOVERED: u64 = 11;
const KIND_RECOVERY_COMPLETE: u64 = 12;

impl TraceEvent {
    /// Packs the event into `(kind, a, b)` cells.
    fn encode(self) -> (u64, u64, u64) {
        match self {
            TraceEvent::SessionAccepted { active } => (KIND_SESSION_ACCEPTED, active, 0),
            TraceEvent::SessionRefused { active } => (KIND_SESSION_REFUSED, active, 0),
            TraceEvent::FrameDecoded { kind, len } => (KIND_FRAME_DECODED, u64::from(kind), len),
            TraceEvent::RoundOpened { round, tenant } => (KIND_ROUND_OPENED, round, tenant),
            TraceEvent::RoundClosed { round, accepted } => (KIND_ROUND_CLOSED, round, accepted),
            TraceEvent::RoundFinalized { round } => (KIND_ROUND_FINALIZED, round, 0),
            TraceEvent::QuiesceBegin { round } => (KIND_QUIESCE_BEGIN, round, 0),
            TraceEvent::QuiesceEnd { round } => (KIND_QUIESCE_END, round, 0),
            TraceEvent::ErrEmitted { code } => (KIND_ERR_EMITTED, u64::from(code), 0),
            TraceEvent::StallReaped { active } => (KIND_STALL_REAPED, active, 0),
            TraceEvent::RoundRecovered { round, replayed } => {
                (KIND_ROUND_RECOVERED, round, replayed)
            }
            TraceEvent::RecoveryComplete { rounds, replayed } => {
                (KIND_RECOVERY_COMPLETE, rounds, replayed)
            }
        }
    }

    /// Unpacks `(kind, a, b)` cells; `None` for an unknown kind (a slot
    /// never published, or a vocabulary from a newer build).
    fn decode(kind: u64, a: u64, b: u64) -> Option<TraceEvent> {
        Some(match kind {
            KIND_SESSION_ACCEPTED => TraceEvent::SessionAccepted { active: a },
            KIND_SESSION_REFUSED => TraceEvent::SessionRefused { active: a },
            KIND_FRAME_DECODED => TraceEvent::FrameDecoded {
                kind: (a & 0xff) as u8,
                len: b,
            },
            KIND_ROUND_OPENED => TraceEvent::RoundOpened {
                round: a,
                tenant: b,
            },
            KIND_ROUND_CLOSED => TraceEvent::RoundClosed {
                round: a,
                accepted: b,
            },
            KIND_ROUND_FINALIZED => TraceEvent::RoundFinalized { round: a },
            KIND_QUIESCE_BEGIN => TraceEvent::QuiesceBegin { round: a },
            KIND_QUIESCE_END => TraceEvent::QuiesceEnd { round: a },
            KIND_ERR_EMITTED => TraceEvent::ErrEmitted {
                code: (a & 0xff) as u8,
            },
            KIND_STALL_REAPED => TraceEvent::StallReaped { active: a },
            KIND_ROUND_RECOVERED => TraceEvent::RoundRecovered {
                round: a,
                replayed: b,
            },
            KIND_RECOVERY_COMPLETE => TraceEvent::RecoveryComplete {
                rounds: a,
                replayed: b,
            },
            _ => return None,
        })
    }
}

/// One event read back out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number (allocation order across all writers).
    pub seq: u64,
    /// Microseconds since ring construction (monotonic clock).
    pub at_micros: u64,
    /// The decoded event.
    pub event: TraceEvent,
}

/// One ring slot: an odd/even seqlock version plus the event cells.
#[derive(Debug)]
struct Slot {
    /// Odd while a writer is mid-publish, even when stable; 0 = never
    /// written.
    version: AtomicU64,
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    at_micros: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            at_micros: AtomicU64::new(0),
        }
    }
}

/// The fixed-capacity, lock-free trace ring. See the module docs for
/// the publish/read protocol.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    next: AtomicU64,
    epoch: Instant,
}

impl TraceRing {
    /// A ring holding the latest `capacity` events (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            next: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Slots the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (including those since overwritten).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event: claims the next sequence number and publishes
    /// into its slot. Lock-free, allocation-free; only the version
    /// counter uses non-relaxed ordering (the seqlock publish edge).
    pub fn record(&self, event: TraceEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let Some(slot) = self.slots.get(idx) else {
            return;
        };
        let (kind, a, b) = event.encode();
        let at = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        slot.version.fetch_add(1, Ordering::AcqRel); // odd: in progress
        slot.seq.store(seq, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.at_micros.store(at, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::Release); // even: published
    }

    /// Copies out every stable slot, sorted by sequence number. Slots a
    /// writer is racing are retried a few times and then dropped — a
    /// snapshot under fire returns the events it could read
    /// consistently rather than blocking the writers.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _attempt in 0..4 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 {
                    break; // never written
                }
                if v1 % 2 == 1 {
                    continue; // mid-publish, retry
                }
                let seq = slot.seq.load(Ordering::Relaxed);
                let kind = slot.kind.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                let at_micros = slot.at_micros.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if slot.version.load(Ordering::Relaxed) != v1 {
                    continue; // raced a writer, retry
                }
                if let Some(event) = TraceEvent::decode(kind, a, b) {
                    out.push(TraceRecord {
                        seq,
                        at_micros,
                        event,
                    });
                }
                break;
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips_through_the_cells() {
        let events = [
            TraceEvent::SessionAccepted { active: 3 },
            TraceEvent::SessionRefused { active: 64 },
            TraceEvent::FrameDecoded {
                kind: 0x07,
                len: 1 << 20,
            },
            TraceEvent::RoundOpened {
                round: 9,
                tenant: 2,
            },
            TraceEvent::RoundClosed {
                round: 9,
                accepted: 1 << 20,
            },
            TraceEvent::RoundFinalized { round: 9 },
            TraceEvent::QuiesceBegin { round: 9 },
            TraceEvent::QuiesceEnd { round: 9 },
            TraceEvent::ErrEmitted { code: 11 },
            TraceEvent::StallReaped { active: 1 },
            TraceEvent::RoundRecovered {
                round: 9,
                replayed: 4096,
            },
            TraceEvent::RecoveryComplete {
                rounds: 2,
                replayed: 8192,
            },
        ];
        for ev in events {
            let (k, a, b) = ev.encode();
            assert_eq!(TraceEvent::decode(k, a, b), Some(ev));
        }
        assert_eq!(TraceEvent::decode(999, 0, 0), None);
    }

    #[test]
    fn ring_keeps_the_latest_events_in_seq_order() {
        let ring = TraceRing::new(8);
        for i in 0..20 {
            ring.record(TraceEvent::RoundOpened {
                round: i,
                tenant: 0,
            });
        }
        assert_eq!(ring.recorded(), 20);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        for r in &snap {
            assert_eq!(
                r.event,
                TraceEvent::RoundOpened {
                    round: r.seq,
                    tenant: 0
                }
            );
        }
    }

    #[test]
    fn concurrent_writers_never_produce_torn_or_duplicate_seqs() {
        let ring = TraceRing::new(256);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..2_000 {
                        ring.record(TraceEvent::FrameDecoded {
                            kind: t as u8,
                            len: i,
                        });
                    }
                });
            }
            // Snapshot while writers are live: whatever comes back must
            // be internally consistent.
            for _ in 0..50 {
                let snap = ring.snapshot();
                assert!(snap.len() <= 256);
                for w in snap.windows(2) {
                    assert!(w[0].seq < w[1].seq, "duplicate or unsorted seq");
                }
            }
        });
        assert_eq!(ring.recorded(), 16_000);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 256);
        // The final snapshot holds exactly the last 256 sequence numbers.
        assert_eq!(snap.first().map(|r| r.seq), Some(16_000 - 256));
        assert_eq!(snap.last().map(|r| r.seq), Some(15_999));
    }
}
