//! Table II: the evaluation datasets — paper statistics next to the
//! generated synthetic stand-ins actually used at the current scale.

use crate::config::ExperimentConfig;
use ldp_graph::datasets::{table2_row, Dataset, DatasetStats};

/// Builds one row per dataset at the configuration's experiment scale.
pub fn run(cfg: &ExperimentConfig) -> Vec<DatasetStats> {
    Dataset::ALL
        .iter()
        .map(|&d| {
            let fraction = cfg.nodes_for(d) as f64 / d.paper_nodes() as f64;
            table2_row(d, fraction, cfg.seed ^ 0xD5)
        })
        .collect()
}

/// Renders the rows as a markdown table.
pub fn to_markdown(rows: &[DatasetStats]) -> String {
    let mut out = String::from(
        "### Table II: datasets (paper vs. generated stand-in)\n\
         | Dataset | paper N | paper E | generated N | generated E | avg degree | degree gini | max degree |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.1} | {:.2} | {} |\n",
            row.dataset.name(),
            row.paper_nodes,
            row.paper_edges,
            row.generated_nodes,
            row.generated_edges,
            row.generated_avg_degree,
            row.generated_degree_gini,
            row.generated_max_degree,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_constants() {
        let rows = run(&ExperimentConfig::smoke());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].paper_nodes, 4_039);
        assert_eq!(rows[3].paper_edges, 12_238_285);
        for r in &rows {
            assert!(r.generated_nodes >= 200);
            assert!(r.generated_edges > 0);
        }
    }

    #[test]
    fn markdown_renders_all_datasets() {
        let rows = run(&ExperimentConfig::smoke());
        let md = to_markdown(&rows);
        for name in ["Facebook", "Enron", "AstroPh", "Gplus"] {
            assert!(md.contains(name));
        }
    }
}
