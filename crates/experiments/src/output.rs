//! Figure/series containers and their text renderings.
//!
//! A [`Figure`] corresponds to one panel of a paper figure: a set of named
//! series over a shared x-grid. Renderings: aligned markdown table (for
//! EXPERIMENTS.md), CSV (for external plotting), and a quick ASCII chart
//! (for terminal inspection).

use std::fmt::Write as _;

/// One named curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "MGA").
    pub label: String,
    /// y-value per x-grid point.
    pub values: Vec<f64>,
}

/// One figure panel.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Panel title (e.g. "Fig 6(a) Facebook").
    pub title: String,
    /// x-axis name (e.g. "epsilon").
    pub x_label: String,
    /// y-axis name (e.g. "overall gain").
    pub y_label: String,
    /// Shared x grid.
    pub x: Vec<f64>,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure over an x-grid.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<f64>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            series: Vec::new(),
        }
    }

    /// Adds a series.
    ///
    /// # Panics
    /// Panics if the series length differs from the x-grid.
    pub fn push_series(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.x.len(),
            "series length must match x grid"
        );
        self.series.push(Series {
            label: label.into(),
            values,
        });
    }

    /// Markdown table: x column plus one column per series.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.label);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (i, &x) in self.x.iter().enumerate() {
            let _ = write!(out, "| {} |", format_num(x));
            for s in &self.series {
                let _ = write!(out, " {} |", format_num(s.values[i]));
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        for (i, &x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x}");
            for s in &self.series {
                let _ = write!(out, ",{}", s.values[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// A coarse ASCII chart, one row per series per x-point, bars scaled to
    /// the figure-wide maximum.
    pub fn to_ascii_chart(&self) -> String {
        let max = self
            .series
            .iter()
            .flat_map(|s| s.values.iter().copied())
            .fold(0.0f64, |a, b| a.max(b.abs()));
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} vs {})", self.title, self.y_label, self.x_label);
        if max <= 0.0 {
            let _ = writeln!(out, "  (all values zero)");
            return out;
        }
        const WIDTH: usize = 48;
        for (i, &x) in self.x.iter().enumerate() {
            for s in &self.series {
                let v = s.values[i];
                let bar = ((v.abs() / max) * WIDTH as f64).round() as usize;
                let _ = writeln!(
                    out,
                    "  {:>8} {:>6} |{:<width$}| {}",
                    format_num(x),
                    s.label,
                    "#".repeat(bar.min(WIDTH)),
                    format_num(v),
                    width = WIDTH
                );
            }
        }
        out
    }

    /// Writes CSV and markdown renderings under `dir` as
    /// `<slug>.csv`/`<slug>.md`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        std::fs::write(dir.join(format!("{slug}.csv")), self.to_csv())?;
        std::fs::write(dir.join(format!("{slug}.md")), self.to_markdown())?;
        Ok(())
    }
}

/// Compact numeric formatting for tables: scientific for tiny magnitudes,
/// fixed otherwise.
pub fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() < 0.001 {
        format!("{v:.2e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut f = Figure::new("Test", "epsilon", "gain", vec![1.0, 2.0]);
        f.push_series("MGA", vec![0.5, 0.25]);
        f.push_series("RVA", vec![0.1, 0.05]);
        f
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = fig().to_markdown();
        assert!(md.contains("| epsilon | MGA | RVA |"));
        assert!(md.contains("0.5000"));
        assert!(md.contains("0.0500"));
    }

    #[test]
    fn csv_roundtrips_numbers() {
        let csv = fig().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "epsilon,MGA,RVA");
        assert_eq!(lines.next().unwrap(), "1,0.5,0.1");
    }

    #[test]
    fn ascii_chart_draws_bars() {
        let chart = fig().to_ascii_chart();
        assert!(chart.contains('#'));
        assert!(chart.contains("MGA"));
    }

    #[test]
    fn ascii_chart_handles_all_zero() {
        let mut f = Figure::new("Z", "x", "y", vec![1.0]);
        f.push_series("a", vec![0.0]);
        assert!(f.to_ascii_chart().contains("all values zero"));
    }

    #[test]
    #[should_panic(expected = "series length")]
    fn mismatched_series_rejected() {
        let mut f = Figure::new("T", "x", "y", vec![1.0, 2.0]);
        f.push_series("bad", vec![1.0]);
    }

    #[test]
    fn format_num_ranges() {
        assert_eq!(format_num(0.0), "0");
        assert_eq!(format_num(1234.0), "1234");
        assert_eq!(format_num(0.5), "0.5000");
        assert!(format_num(0.00001).contains('e'));
    }

    #[test]
    fn write_to_dir_creates_files() {
        let dir = std::env::temp_dir().join("poison_experiments_test_out");
        let _ = std::fs::remove_dir_all(&dir);
        fig().write_to_dir(&dir).unwrap();
        assert!(dir.join("test.csv").exists());
        assert!(dir.join("test.md").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
