//! Shared sweep machinery for the attack figures (Figs. 6–11).
//!
//! Every panel of those figures is the same experiment shape: fix two of
//! (ε, β, γ) at the Table III defaults, sweep the third, and plot the mean
//! overall gain of RVA/RNA/MGA on one dataset. The MGA theory curves
//! (Theorems 1–2) ride along for comparison.
//!
//! Each point is one [`Scenario`] run: the engine owns the exact vs.
//! analytic-sampled choice (degree sweeps on large stand-ins sample
//! analytically at `O(r)` per trial), the common-random-numbers
//! discipline, and the trial fold — there is no protocol- or mode-specific
//! branching left here.

use crate::config::{defaults, ExperimentConfig};
use crate::output::Figure;
use crate::runner::{default_threads, parallel_map};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::{LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    attack_for, theorem1_degree_gain, theorem2_clustering_gain, AttackStrategy, AttackerKnowledge,
    MgaOptions, ScenarioError, TargetSelection, ThreatModel,
};

/// Which of the three parameters a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Privacy budget ε (Figs. 6, 9).
    Epsilon,
    /// Fake-user fraction β (Figs. 7, 10).
    Beta,
    /// Target fraction γ (Figs. 8, 11).
    Gamma,
}

impl SweepAxis {
    /// Axis label for the figures.
    pub fn label(self) -> &'static str {
        match self {
            SweepAxis::Epsilon => "epsilon",
            SweepAxis::Beta => "beta",
            SweepAxis::Gamma => "gamma",
        }
    }
}

/// The (ε, β, γ) triple a single sweep point runs with.
fn point_params(axis: SweepAxis, x: f64) -> (f64, f64, f64) {
    match axis {
        SweepAxis::Epsilon => (x, defaults::BETA, defaults::GAMMA),
        SweepAxis::Beta => (defaults::EPSILON, x, defaults::GAMMA),
        SweepAxis::Gamma => (defaults::EPSILON, defaults::BETA, x),
    }
}

/// Runs one sweep panel (one dataset) and returns its figure, including
/// the MGA theory curve.
///
/// # Errors
/// Propagates the first scenario failure instead of aborting the sweep.
pub fn sweep_dataset(
    cfg: &ExperimentConfig,
    dataset: Dataset,
    metric: Metric,
    axis: SweepAxis,
    xs: &[f64],
    figure_name: &str,
) -> Result<Figure, ScenarioError> {
    // Degree-centrality sweeps may use a larger stand-in: the engine's
    // auto mode serves those points through the analytic-sampling pipeline
    // (O(r) per trial); clustering sweeps materialize the perturbed view
    // and stay at the exact-mode size.
    let graph = match metric {
        Metric::Degree => cfg.degree_sweep_graph_for(dataset),
        _ => cfg.graph_for(dataset),
    };
    let points: Vec<(usize, f64)> = xs.iter().copied().enumerate().collect();

    // Each point: (per-strategy mean gains, theory value).
    let results: Vec<Result<(Vec<f64>, f64), ScenarioError>> =
        parallel_map(points, default_threads(), |&(xi, x)| {
            let (epsilon, beta, gamma) = point_params(axis, x);
            let protocol = LfGdpr::new(epsilon).expect("positive epsilon grid");
            let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ (xi as u64) << 8 ^ dataset as u64);
            let threat = ThreatModel::from_fractions(
                &graph,
                beta,
                gamma,
                TargetSelection::UniformRandom,
                &mut threat_rng,
            );
            let gains = AttackStrategy::ALL
                .iter()
                .map(|&strategy| {
                    Ok(Scenario::on(protocol)
                        .attack(attack_for(strategy, MgaOptions::default()))
                        .metric(metric)
                        .threat(threat.clone())
                        .trials(cfg.trials)
                        .seed(cfg.seed ^ ((xi as u64) << 16))
                        .run(&graph)?
                        .mean_gain())
                })
                .collect::<Result<Vec<f64>, ScenarioError>>()?;
            let knowledge =
                AttackerKnowledge::derive(&protocol, threat.population(), graph.average_degree());
            let theory = match metric {
                Metric::Clustering => theorem2_clustering_gain(
                    threat.m_fake,
                    threat.num_targets(),
                    threat.population(),
                    knowledge.avg_perturbed_degree,
                    knowledge.p_keep,
                ),
                _ => theorem1_degree_gain(
                    threat.m_fake,
                    threat.num_targets(),
                    threat.population(),
                    knowledge.avg_perturbed_degree,
                ),
            };
            Ok((gains, theory))
        });
    let results = results
        .into_iter()
        .collect::<Result<Vec<(Vec<f64>, f64)>, ScenarioError>>()?;

    let metric_name = format!("{metric} gain");
    let mut figure = Figure::new(
        format!("{figure_name} {}", dataset.name()),
        axis.label(),
        metric_name,
        xs.to_vec(),
    );
    for (si, strategy) in AttackStrategy::ALL.iter().enumerate() {
        figure.push_series(
            strategy.name(),
            results.iter().map(|(g, _)| g[si]).collect(),
        );
    }
    figure.push_series("MGA-theory", results.iter().map(|&(_, t)| t).collect());
    Ok(figure)
}

/// Runs the figure over all four datasets — or one, when `only` is given
/// (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn sweep_all_datasets(
    cfg: &ExperimentConfig,
    metric: Metric,
    axis: SweepAxis,
    xs: &[f64],
    figure_name: &str,
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    Dataset::ALL
        .iter()
        .filter(|&&d| only.is_none_or(|o| o == d))
        .map(|&d| sweep_dataset(cfg, d, metric, axis, xs, figure_name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_series() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 3,
        };
        let fig = sweep_dataset(
            &cfg,
            Dataset::Facebook,
            Metric::Degree,
            SweepAxis::Epsilon,
            &[2.0, 6.0],
            "Fig test",
        )
        .unwrap();
        assert_eq!(fig.series.len(), 4, "RVA, RNA, MGA, theory");
        assert_eq!(fig.x, vec![2.0, 6.0]);
        assert!(fig
            .series
            .iter()
            .all(|s| s.values.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn mga_beats_baselines_in_sweep() {
        let cfg = ExperimentConfig {
            scale: 0.3,
            trials: 2,
            seed: 5,
        };
        let fig = sweep_dataset(
            &cfg,
            Dataset::Facebook,
            Metric::Degree,
            SweepAxis::Epsilon,
            &[4.0],
            "Fig test",
        )
        .unwrap();
        let by_label = |l: &str| {
            fig.series
                .iter()
                .find(|s| s.label == l)
                .map(|s| s.values[0])
                .unwrap()
        };
        assert!(by_label("MGA") > by_label("RNA"));
        assert!(by_label("MGA") > 0.0);
    }

    #[test]
    fn dataset_filter_restricts_the_panels() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 7,
        };
        let figs = sweep_all_datasets(
            &cfg,
            Metric::Degree,
            SweepAxis::Epsilon,
            &[4.0],
            "Fig test",
            Some(Dataset::Enron),
        )
        .unwrap();
        assert_eq!(figs.len(), 1);
        assert!(figs[0].title.contains("Enron"));
    }

    #[test]
    fn axis_labels() {
        assert_eq!(SweepAxis::Epsilon.label(), "epsilon");
        assert_eq!(SweepAxis::Beta.label(), "beta");
        assert_eq!(SweepAxis::Gamma.label(), "gamma");
    }
}
