//! Shared sweep machinery for the attack figures (Figs. 6–11).
//!
//! Every panel of those figures is the same experiment shape: fix two of
//! (ε, β, γ) at the Table III defaults, sweep the third, and plot the mean
//! overall gain of RVA/RNA/MGA on one dataset. The MGA theory curves
//! (Theorems 1–2) ride along for comparison.

use crate::config::{defaults, ExperimentConfig};
use crate::output::Figure;
use crate::runner::{default_threads, mean_gain_over_trials, parallel_map};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::LfGdpr;
use poison_core::{
    run_lfgdpr_attack, run_sampled_degree_attack, theorem1_degree_gain, theorem2_clustering_gain,
    AttackStrategy, AttackerKnowledge, MgaOptions, TargetMetric, TargetSelection, ThreatModel,
};

/// Which of the three parameters a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Privacy budget ε (Figs. 6, 9).
    Epsilon,
    /// Fake-user fraction β (Figs. 7, 10).
    Beta,
    /// Target fraction γ (Figs. 8, 11).
    Gamma,
}

impl SweepAxis {
    /// Axis label for the figures.
    pub fn label(self) -> &'static str {
        match self {
            SweepAxis::Epsilon => "epsilon",
            SweepAxis::Beta => "beta",
            SweepAxis::Gamma => "gamma",
        }
    }
}

/// The (ε, β, γ) triple a single sweep point runs with.
fn point_params(axis: SweepAxis, x: f64) -> (f64, f64, f64) {
    match axis {
        SweepAxis::Epsilon => (x, defaults::BETA, defaults::GAMMA),
        SweepAxis::Beta => (defaults::EPSILON, x, defaults::GAMMA),
        SweepAxis::Gamma => (defaults::EPSILON, defaults::BETA, x),
    }
}

/// Runs one sweep panel (one dataset) and returns its figure, including
/// the MGA theory curve.
pub fn sweep_dataset(
    cfg: &ExperimentConfig,
    dataset: Dataset,
    metric: TargetMetric,
    axis: SweepAxis,
    xs: &[f64],
    figure_name: &str,
) -> Figure {
    // Degree-centrality sweeps may use a larger stand-in together with the
    // analytic-sampling pipeline (O(r) per trial); clustering sweeps
    // materialize the perturbed view and stay at the exact-mode size.
    let graph = match metric {
        TargetMetric::DegreeCentrality => cfg.degree_sweep_graph_for(dataset),
        TargetMetric::ClusteringCoefficient => cfg.graph_for(dataset),
    };
    let use_sampled = metric == TargetMetric::DegreeCentrality
        && graph.num_nodes() > ExperimentConfig::SAMPLED_MODE_THRESHOLD;
    let points: Vec<(usize, f64)> = xs.iter().copied().enumerate().collect();

    // Each point: (per-strategy mean gains, theory value).
    let results = parallel_map(points, default_threads(), |&(xi, x)| {
        let (epsilon, beta, gamma) = point_params(axis, x);
        let protocol = LfGdpr::new(epsilon).expect("positive epsilon grid");
        let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ (xi as u64) << 8 ^ dataset as u64);
        let threat = ThreatModel::from_fractions(
            &graph,
            beta,
            gamma,
            TargetSelection::UniformRandom,
            &mut threat_rng,
        );
        let gains: Vec<f64> = AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                mean_gain_over_trials(cfg.trials, cfg.seed ^ ((xi as u64) << 16), |_, seed| {
                    if use_sampled {
                        run_sampled_degree_attack(&graph, &protocol, &threat, strategy, seed)
                    } else {
                        run_lfgdpr_attack(
                            &graph,
                            &protocol,
                            &threat,
                            strategy,
                            metric,
                            MgaOptions::default(),
                            seed,
                        )
                    }
                })
            })
            .collect();
        let knowledge =
            AttackerKnowledge::derive(&protocol, threat.population(), graph.average_degree());
        let theory = match metric {
            TargetMetric::DegreeCentrality => theorem1_degree_gain(
                threat.m_fake,
                threat.num_targets(),
                threat.population(),
                knowledge.avg_perturbed_degree,
            ),
            TargetMetric::ClusteringCoefficient => theorem2_clustering_gain(
                threat.m_fake,
                threat.num_targets(),
                threat.population(),
                knowledge.avg_perturbed_degree,
                knowledge.p_keep,
            ),
        };
        (gains, theory)
    });

    let metric_name = match metric {
        TargetMetric::DegreeCentrality => "degree-centrality gain",
        TargetMetric::ClusteringCoefficient => "clustering-coefficient gain",
    };
    let mut figure = Figure::new(
        format!("{figure_name} {}", dataset.name()),
        axis.label(),
        metric_name,
        xs.to_vec(),
    );
    for (si, strategy) in AttackStrategy::ALL.iter().enumerate() {
        figure.push_series(
            strategy.name(),
            results.iter().map(|(g, _)| g[si]).collect(),
        );
    }
    figure.push_series("MGA-theory", results.iter().map(|&(_, t)| t).collect());
    figure
}

/// Runs the full four-dataset figure.
pub fn sweep_all_datasets(
    cfg: &ExperimentConfig,
    metric: TargetMetric,
    axis: SweepAxis,
    xs: &[f64],
    figure_name: &str,
) -> Vec<Figure> {
    Dataset::ALL
        .iter()
        .map(|&d| sweep_dataset(cfg, d, metric, axis, xs, figure_name))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_series() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 3,
        };
        let fig = sweep_dataset(
            &cfg,
            Dataset::Facebook,
            TargetMetric::DegreeCentrality,
            SweepAxis::Epsilon,
            &[2.0, 6.0],
            "Fig test",
        );
        assert_eq!(fig.series.len(), 4, "RVA, RNA, MGA, theory");
        assert_eq!(fig.x, vec![2.0, 6.0]);
        assert!(fig
            .series
            .iter()
            .all(|s| s.values.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn mga_beats_baselines_in_sweep() {
        let cfg = ExperimentConfig {
            scale: 0.3,
            trials: 2,
            seed: 5,
        };
        let fig = sweep_dataset(
            &cfg,
            Dataset::Facebook,
            TargetMetric::DegreeCentrality,
            SweepAxis::Epsilon,
            &[4.0],
            "Fig test",
        );
        let by_label = |l: &str| {
            fig.series
                .iter()
                .find(|s| s.label == l)
                .map(|s| s.values[0])
                .unwrap()
        };
        assert!(by_label("MGA") > by_label("RNA"));
        assert!(by_label("MGA") > 0.0);
    }

    #[test]
    fn axis_labels() {
        assert_eq!(SweepAxis::Epsilon.label(), "epsilon");
        assert_eq!(SweepAxis::Beta.label(), "beta");
        assert_eq!(SweepAxis::Gamma.label(), "gamma");
    }
}
