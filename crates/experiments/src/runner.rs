//! Parallel sweep execution.
//!
//! Experiment points (dataset × x-value × strategy) are independent, so the
//! runner fans them out over the workspace-shared parallel runtime
//! ([`ldp_graph::runtime`], where `parallel_map` was promoted once the
//! protocol layer needed it too). Each point carries its own seeds;
//! results come back in input order regardless of thread interleaving.

use poison_core::AttackOutcome;

pub use ldp_graph::runtime::{default_threads, parallel_map};

/// Mean overall gain across trials; `run` receives `(trial_index, seed)`.
pub fn mean_gain_over_trials<F>(trials: u64, base_seed: u64, mut run: F) -> f64
where
    F: FnMut(u64, u64) -> AttackOutcome,
{
    assert!(trials > 0);
    (0..trials)
        .map(|i| run(i, base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9))).gain())
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    // The thorough parallel_map suite (order, fast paths, chunk coverage)
    // lives with the implementation in ldp_graph::runtime; this pins the
    // re-export so sweep call sites keep compiling against this path.
    #[test]
    fn reexported_parallel_map_works() {
        let out = parallel_map((0..50).collect::<Vec<usize>>(), 4, |&x| x + 1);
        assert_eq!(out, (1..51).collect::<Vec<_>>());
    }

    #[test]
    fn mean_gain_passes_distinct_seeds() {
        let mut seeds = Vec::new();
        let mean = mean_gain_over_trials(3, 10, |_, seed| {
            seeds.push(seed);
            AttackOutcome::new(vec![0.0], vec![seed as f64 % 7.0])
        });
        assert_eq!(seeds.len(), 3);
        assert!(seeds.windows(2).all(|w| w[0] != w[1]));
        assert!(mean >= 0.0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
