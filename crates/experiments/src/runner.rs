//! Parallel sweep execution.
//!
//! Experiment points (dataset × x-value × strategy) are independent, so the
//! runner fans them out over scoped threads (`std::thread::scope`). Each
//! point carries its own seeds; results come back in input order regardless
//! of thread interleaving.

use poison_core::AttackOutcome;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order. Falls back to a sequential loop for a single item or
/// thread.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("slot lock poisoned") = Some(r);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Number of worker threads to use by default: the machine's parallelism,
/// capped to leave a core for the harness.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get().saturating_sub(1).max(1))
}

/// Mean overall gain across trials; `run` receives `(trial_index, seed)`.
pub fn mean_gain_over_trials<F>(trials: u64, base_seed: u64, mut run: F) -> f64
where
    F: FnMut(u64, u64) -> AttackOutcome,
{
    assert!(trials > 0);
    (0..trials)
        .map(|i| run(i, base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9))).gain())
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn mean_gain_passes_distinct_seeds() {
        let mut seeds = Vec::new();
        let mean = mean_gain_over_trials(3, 10, |_, seed| {
            seeds.push(seed);
            AttackOutcome::new(vec![0.0], vec![seed as f64 % 7.0])
        });
        assert_eq!(seeds.len(), 3);
        assert!(seeds.windows(2).all(|w| w[0] != w[1]));
        assert!(mean >= 0.0);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
