//! Exp 9 / Fig. 15: attacks on LF-GDPR and LDPGen for **modularity**,
//! sweeping ε (Facebook stand-in).
//!
//! The partition comes from label propagation on the genuine graph (the
//! data collector's standard workflow); the gain is the absolute change of
//! the estimated modularity, per DESIGN.md §2. Both panels run through
//! `fig14`'s generic ε-panel helper — only the protocol factory differs.

use crate::config::{defaults, grids, ExperimentConfig};
use crate::fig14::epsilon_panel;
use crate::output::Figure;
use ldp_graph::community::label_propagation;
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::{LdpGen, LfGdpr, Metric};
use poison_core::{ScenarioError, TargetSelection, ThreatModel};

fn setup(cfg: &ExperimentConfig, tag: u64) -> (ldp_graph::CsrGraph, ThreatModel, Vec<usize>) {
    let graph = cfg.graph_for(Dataset::Facebook);
    let mut rng = Xoshiro256pp::new(cfg.seed ^ tag);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut rng,
    );
    let partition = label_propagation(&graph, 20, &mut rng);
    (graph, threat, partition)
}

/// Panel (a): LF-GDPR modularity gains over ε.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_a(cfg: &ExperimentConfig, epsilons: &[f64]) -> Result<Figure, ScenarioError> {
    let (graph, threat, partition) = setup(cfg, 0x0F15_000A);
    epsilon_panel(
        cfg,
        &graph,
        &threat,
        Some(&partition),
        |epsilon| LfGdpr::new(epsilon).expect("positive epsilon grid"),
        Metric::Modularity,
        epsilons,
        "Fig 15(a) LF-GDPR",
        "modularity gain",
    )
}

/// Panel (b): LDPGen modularity gains over ε.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_b(cfg: &ExperimentConfig, epsilons: &[f64]) -> Result<Figure, ScenarioError> {
    let (graph, threat, partition) = setup(cfg, 0x0F15_000B);
    epsilon_panel(
        cfg,
        &graph,
        &threat,
        Some(&partition),
        |epsilon| LdpGen::with_defaults(epsilon).expect("positive epsilon grid"),
        Metric::Modularity,
        epsilons,
        "Fig 15(b) LDPGen",
        "modularity gain",
    )
}

/// Runs both panels on the paper's ε grid.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Figure>, ScenarioError> {
    Ok(vec![
        run_panel_a(cfg, &grids::EPSILONS)?,
        run_panel_b(cfg, &grids::EPSILONS)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 59,
        };
        let a = run_panel_a(&cfg, &[4.0]).unwrap();
        let b = run_panel_b(&cfg, &[4.0]).unwrap();
        for fig in [a, b] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig
                .series
                .iter()
                .all(|s| s.values.iter().all(|v| v.is_finite())));
        }
    }
}
