//! Exp 9 / Fig. 15: attacks on LF-GDPR and LDPGen for **modularity**,
//! sweeping ε (Facebook stand-in).
//!
//! The partition comes from label propagation on the genuine graph (the
//! data collector's standard workflow); the gain is the absolute change of
//! the estimated modularity, per DESIGN.md §2.

use crate::config::{defaults, grids, ExperimentConfig};
use crate::fig14::build_figure;
use crate::output::Figure;
use crate::runner::{default_threads, mean_gain_over_trials, parallel_map};
use ldp_graph::community::label_propagation;
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::{LdpGen, LfGdpr};
use poison_core::ldpgen_attack::{run_ldpgen_attack, LdpGenMetric};
use poison_core::{
    run_lfgdpr_modularity_attack, AttackStrategy, MgaOptions, TargetSelection, ThreatModel,
};

fn setup(cfg: &ExperimentConfig, tag: u64) -> (ldp_graph::CsrGraph, ThreatModel, Vec<usize>) {
    let graph = cfg.graph_for(Dataset::Facebook);
    let mut rng = Xoshiro256pp::new(cfg.seed ^ tag);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut rng,
    );
    let partition = label_propagation(&graph, 20, &mut rng);
    (graph, threat, partition)
}

/// Panel (a): LF-GDPR modularity gains over ε.
pub fn run_panel_a(cfg: &ExperimentConfig, epsilons: &[f64]) -> Figure {
    let (graph, threat, partition) = setup(cfg, 0x0F15_000A);
    let points: Vec<(usize, f64)> = epsilons.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, epsilon)| {
        let protocol = LfGdpr::new(epsilon).expect("positive epsilon grid");
        AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                mean_gain_over_trials(cfg.trials, cfg.seed ^ ((xi as u64) << 12), |_, seed| {
                    run_lfgdpr_modularity_attack(
                        &graph,
                        &protocol,
                        &threat,
                        strategy,
                        &partition,
                        MgaOptions::default(),
                        seed,
                    )
                })
            })
            .collect::<Vec<f64>>()
    });
    build_figure("Fig 15(a) LF-GDPR", epsilons, &rows, "modularity gain")
}

/// Panel (b): LDPGen modularity gains over ε.
pub fn run_panel_b(cfg: &ExperimentConfig, epsilons: &[f64]) -> Figure {
    let (graph, threat, partition) = setup(cfg, 0x0F15_000B);
    let points: Vec<(usize, f64)> = epsilons.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, epsilon)| {
        let protocol = LdpGen::with_defaults(epsilon).expect("positive epsilon grid");
        AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                mean_gain_over_trials(cfg.trials, cfg.seed ^ ((xi as u64) << 12), |_, seed| {
                    run_ldpgen_attack(
                        &graph,
                        &protocol,
                        &threat,
                        strategy,
                        LdpGenMetric::Modularity,
                        Some(&partition),
                        seed,
                    )
                })
            })
            .collect::<Vec<f64>>()
    });
    build_figure("Fig 15(b) LDPGen", epsilons, &rows, "modularity gain")
}

/// Runs both panels on the paper's ε grid.
pub fn run(cfg: &ExperimentConfig) -> Vec<Figure> {
    vec![
        run_panel_a(cfg, &grids::EPSILONS),
        run_panel_b(cfg, &grids::EPSILONS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 59,
        };
        let a = run_panel_a(&cfg, &[4.0]);
        let b = run_panel_b(&cfg, &[4.0]);
        for fig in [a, b] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig
                .series
                .iter()
                .all(|s| s.values.iter().all(|v| v.is_finite())));
        }
    }
}
