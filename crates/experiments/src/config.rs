//! Experiment configuration (paper Table III defaults).

use ldp_graph::datasets::Dataset;

/// Default parameter settings — paper Table III.
pub mod defaults {
    /// Fraction of fake users β.
    pub const BETA: f64 = 0.05;
    /// Fraction of target users γ.
    pub const GAMMA: f64 = 0.05;
    /// Privacy budget ε.
    pub const EPSILON: f64 = 4.0;
}

/// Global knobs shared by every experiment run.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Multiplier on the per-dataset experiment node counts (1.0 ≈ 1,000
    /// nodes per dataset; raise toward paper scale when time allows).
    pub scale: f64,
    /// Independent trials per point; figures plot the mean.
    pub trials: u64,
    /// Base seed; trial `i` of any point uses a seed derived from it.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 1.0,
            trials: 5,
            seed: 20_250_101,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests: tiny graphs, two trials.
    pub fn smoke() -> Self {
        ExperimentConfig {
            scale: 0.25,
            trials: 2,
            seed: 7,
        }
    }

    /// Node count for a dataset's experiment stand-in (exact-mode
    /// pipelines, i.e. everything that materializes the perturbed view).
    ///
    /// Base sizes are the smallest at which the MGA connection budget
    /// `⌊d̃⌋` *binds* against `r = γn` at high ε — the mechanism behind
    /// Fig. 6's falling MGA curve; Facebook runs at its full paper size.
    /// Average degree always matches the paper's Table II. Gplus is the
    /// exception: its paper density cannot be reproduced below ~19k nodes,
    /// so exact-mode Gplus panels saturate the budget and their ε-trend
    /// flattens (recorded in EXPERIMENTS.md); degree-centrality sweeps use
    /// [`Self::degree_sweep_nodes_for`] instead.
    pub fn nodes_for(&self, dataset: Dataset) -> usize {
        let base: f64 = match dataset {
            Dataset::Facebook => 4_039.0,
            Dataset::Enron => 2_000.0,
            Dataset::AstroPh => 2_000.0,
            Dataset::Gplus => 900.0,
        };
        ((base * self.scale).round() as usize).max(250)
    }

    /// Node count for degree-centrality sweeps (Figs. 6–8), which can use
    /// the `O(r)`-per-trial analytic-sampling pipeline: Gplus gets 20k
    /// nodes so its connection budget binds like the paper's.
    pub fn degree_sweep_nodes_for(&self, dataset: Dataset) -> usize {
        match dataset {
            Dataset::Gplus => ((20_000.0 * self.scale).round() as usize).max(250),
            _ => self.nodes_for(dataset),
        }
    }

    /// Above this population the degree sweeps switch from the exact
    /// (materialized view) pipeline to the analytic-sampling pipeline —
    /// the scenario engine's auto-mode threshold, re-exported so the
    /// Gplus sizing test below stays tied to the value actually in force.
    pub const SAMPLED_MODE_THRESHOLD: usize = poison_core::scenario::SAMPLED_MODE_THRESHOLD;

    /// The graph stand-in for a dataset under this configuration.
    pub fn graph_for(&self, dataset: Dataset) -> ldp_graph::CsrGraph {
        dataset.generate_with_nodes(self.nodes_for(dataset), self.seed ^ 0xD5)
    }

    /// The (possibly larger) stand-in used by degree-centrality sweeps.
    pub fn degree_sweep_graph_for(&self, dataset: Dataset) -> ldp_graph::CsrGraph {
        dataset.generate_with_nodes(self.degree_sweep_nodes_for(dataset), self.seed ^ 0xD5)
    }
}

/// The x-axis grids the paper sweeps.
pub mod grids {
    /// Privacy budgets of Figs. 6, 9, 14, 15.
    pub const EPSILONS: [f64; 8] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    /// Fake-user fractions of Figs. 7, 10.
    pub const BETAS: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];
    /// Target fractions of Figs. 8, 11.
    pub const GAMMAS: [f64; 5] = [0.001, 0.005, 0.01, 0.05, 0.1];
    /// Detect1 thresholds of Fig. 12a.
    pub const FIG12A_THRESHOLDS: [usize; 6] = [50, 100, 150, 200, 250, 300];
    /// Fake-user fractions of Figs. 12b, 13b.
    pub const FIG12B_BETAS: [f64; 6] = [0.001, 0.005, 0.01, 0.05, 0.1, 0.15];
    /// Detect1 thresholds of Fig. 13a.
    pub const FIG13A_THRESHOLDS: [usize; 5] = [50, 75, 100, 125, 150];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        assert_eq!(defaults::BETA, 0.05);
        assert_eq!(defaults::GAMMA, 0.05);
        assert_eq!(defaults::EPSILON, 4.0);
    }

    #[test]
    fn node_counts_scale() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.nodes_for(Dataset::Facebook), 4_039, "full paper size");
        let half = ExperimentConfig { scale: 0.5, ..cfg };
        assert_eq!(half.nodes_for(Dataset::Enron), 1_000);
        let tiny = ExperimentConfig {
            scale: 0.0001,
            ..cfg
        };
        assert_eq!(tiny.nodes_for(Dataset::Facebook), 250, "floor enforced");
    }

    #[test]
    fn degree_sweeps_upscale_gplus_only() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.degree_sweep_nodes_for(Dataset::Gplus), 20_000);
        assert_eq!(
            cfg.degree_sweep_nodes_for(Dataset::Facebook),
            cfg.nodes_for(Dataset::Facebook)
        );
        assert!(
            cfg.degree_sweep_nodes_for(Dataset::Gplus) > ExperimentConfig::SAMPLED_MODE_THRESHOLD
        );
    }

    #[test]
    fn graph_for_is_deterministic() {
        let cfg = ExperimentConfig::smoke();
        let a = cfg.graph_for(Dataset::Enron);
        let b = cfg.graph_for(Dataset::Enron);
        assert_eq!(a, b);
    }

    #[test]
    fn grids_match_paper() {
        assert_eq!(grids::EPSILONS.len(), 8);
        assert_eq!(grids::BETAS, [0.001, 0.005, 0.01, 0.05, 0.1]);
        assert_eq!(grids::FIG12A_THRESHOLDS, [50, 100, 150, 200, 250, 300]);
        assert_eq!(grids::FIG13A_THRESHOLDS, [50, 75, 100, 125, 150]);
    }
}
