//! Small summary-statistics toolkit for experiment outputs: means,
//! unbiased variance, and normal-approximation confidence intervals for
//! the multi-trial gains the figures plot.

/// Summary of a sample of trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns a zeroed summary for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n as f64 - 1.0)
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Standard error of the mean (0 for n < 1).
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation confidence interval around the mean at the
    /// given z-score (1.96 ≈ 95%).
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// True when the two summaries' 95% intervals do not overlap — the
    /// quick "is this ordering meaningful" check used when reporting
    /// attack comparisons.
    pub fn clearly_above(&self, other: &Summary) -> bool {
        let (lo, _) = self.confidence_interval(1.96);
        let (_, hi) = other.confidence_interval(1.96);
        lo > hi
    }
}

/// Collects per-trial gains and summarizes them; `run` receives
/// `(trial_index, seed)` like `runner::mean_gain_over_trials`.
pub fn gain_summary_over_trials<F>(trials: u64, base_seed: u64, mut run: F) -> Summary
where
    F: FnMut(u64, u64) -> poison_core::AttackOutcome,
{
    let values: Vec<f64> = (0..trials)
        .map(|i| run(i, base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9))).gain())
        .collect();
    Summary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.std_error(), 0.0);
        let one = Summary::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.std_dev, 0.0);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.confidence_interval(1.96);
        assert!(lo < s.mean && s.mean < hi);
        let (lo99, hi99) = s.confidence_interval(2.58);
        assert!(lo99 < lo && hi < hi99, "wider z gives wider interval");
    }

    #[test]
    fn clearly_above_detects_separation() {
        let low = Summary::of(&[1.0, 1.1, 0.9, 1.05, 0.95]);
        let high = Summary::of(&[5.0, 5.1, 4.9, 5.05, 4.95]);
        assert!(high.clearly_above(&low));
        assert!(!low.clearly_above(&high));
        assert!(!high.clearly_above(&high));
    }

    #[test]
    fn gain_summary_collects_trials() {
        let s = gain_summary_over_trials(5, 1, |i, _| {
            poison_core::AttackOutcome::new(vec![0.0], vec![i as f64])
        });
        assert_eq!(s.n, 5);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
    }
}
