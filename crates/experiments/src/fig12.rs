//! Exp 7 / Fig. 12: countermeasures against attacks to **degree
//! centrality** (Facebook stand-in).
//!
//! * Panel (a): Detect1 (frequent itemsets) vs. Naive1 vs. no defense
//!   against MGA, sweeping the Detect1 flag threshold — the U-shape:
//!   over-flagging at low thresholds distorts genuine reports, high
//!   thresholds let the attack through.
//! * Panel (b): Detect2 (degree consistency) vs. Naive2 vs. no defense
//!   against RVA, sweeping β.
//!
//! Every cell is one [`Scenario`] run; the defended and undefended
//! variants differ only by `.defend(...)`.

use crate::config::{defaults, grids, ExperimentConfig};
use crate::output::Figure;
use crate::runner::{default_threads, parallel_map};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::{LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    attack_for, AttackStrategy, Defense, MgaOptions, ScenarioError, TargetSelection, ThreatModel,
};
use poison_defense::{
    DegreeConsistencyDefense, FrequentItemsetDefense, NaiveDegreeTails, NaiveTopDegree,
};

/// The metric both panels of this figure evaluate.
const METRIC: Metric = Metric::Degree;

/// Panel (a): Detect1 vs. Naive1 against MGA, over flag thresholds.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_a(cfg: &ExperimentConfig, thresholds: &[usize]) -> Result<Figure, ScenarioError> {
    panel_threshold_sweep(cfg, METRIC, thresholds, AttackStrategy::Mga, "Fig 12(a)")
}

/// Panel (b): Detect2 vs. Naive2 against RVA, over β.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_b(cfg: &ExperimentConfig, betas: &[f64]) -> Result<Figure, ScenarioError> {
    panel_beta_sweep(cfg, METRIC, betas, AttackStrategy::Rva, "Fig 12(b)")
}

/// Runs both panels on the paper's grids.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Figure>, ScenarioError> {
    Ok(vec![
        run_panel_a(cfg, &grids::FIG12A_THRESHOLDS)?,
        run_panel_b(cfg, &grids::FIG12B_BETAS)?,
    ])
}

/// One figure cell: mean gain of `strategy` on `metric`, defended by
/// `defense` (or undefended when `None`).
#[allow(clippy::too_many_arguments)] // one slot per scenario knob, named at call sites
fn mean_defended_gain(
    graph: &ldp_graph::CsrGraph,
    protocol: &LfGdpr,
    threat: &ThreatModel,
    strategy: AttackStrategy,
    metric: Metric,
    defense: Option<&dyn Defense>,
    trials: u64,
    seed: u64,
) -> Result<f64, ScenarioError> {
    let mut builder = Scenario::on(*protocol)
        .attack(attack_for(strategy, MgaOptions::default()))
        .metric(metric)
        .threat(threat.clone())
        .exact()
        .trials(trials)
        .seed(seed);
    if let Some(defense) = defense {
        builder = builder.defend(defense);
    }
    Ok(builder.run(graph)?.mean_gain())
}

/// Shared panel (a)-shape implementation, reused by Fig. 13(a).
pub(crate) fn panel_threshold_sweep(
    cfg: &ExperimentConfig,
    metric: Metric,
    thresholds: &[usize],
    strategy: AttackStrategy,
    title: &str,
) -> Result<Figure, ScenarioError> {
    let graph = cfg.graph_for(Dataset::Facebook);
    let protocol = LfGdpr::new(defaults::EPSILON).expect("default epsilon valid");
    let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ 0x000F_1612);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut threat_rng,
    );

    let points: Vec<(usize, usize)> = thresholds.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, threshold)| {
        let seed0 = cfg.seed ^ ((xi as u64) << 20);
        let cell = |defense: Option<&dyn Defense>| {
            mean_defended_gain(
                &graph, &protocol, &threat, strategy, metric, defense, cfg.trials, seed0,
            )
        };
        let detect1 = FrequentItemsetDefense::new(threshold);
        let naive1 = NaiveTopDegree::default();
        Ok((cell(Some(&detect1))?, cell(Some(&naive1))?, cell(None)?))
    });
    let rows = rows
        .into_iter()
        .collect::<Result<Vec<(f64, f64, f64)>, ScenarioError>>()?;

    let mut figure = Figure::new(
        title,
        "detection threshold",
        "overall gain after defense",
        thresholds.iter().map(|&t| t as f64).collect(),
    );
    figure.push_series("Detect1", rows.iter().map(|r| r.0).collect());
    figure.push_series("Naive1", rows.iter().map(|r| r.1).collect());
    figure.push_series("NoDefense", rows.iter().map(|r| r.2).collect());
    Ok(figure)
}

/// Shared panel (b)-shape implementation, reused by Fig. 13(b).
pub(crate) fn panel_beta_sweep(
    cfg: &ExperimentConfig,
    metric: Metric,
    betas: &[f64],
    strategy: AttackStrategy,
    title: &str,
) -> Result<Figure, ScenarioError> {
    let graph = cfg.graph_for(Dataset::Facebook);
    let protocol = LfGdpr::new(defaults::EPSILON).expect("default epsilon valid");

    let points: Vec<(usize, f64)> = betas.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, beta)| {
        let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ 0x00F1_612B ^ (xi as u64));
        let threat = ThreatModel::from_fractions(
            &graph,
            beta,
            defaults::GAMMA,
            TargetSelection::UniformRandom,
            &mut threat_rng,
        );
        let seed0 = cfg.seed ^ ((xi as u64) << 24);
        let cell = |defense: Option<&dyn Defense>| {
            mean_defended_gain(
                &graph, &protocol, &threat, strategy, metric, defense, cfg.trials, seed0,
            )
        };
        let detect2 = DegreeConsistencyDefense::default();
        let naive2 = NaiveDegreeTails::default();
        Ok((cell(Some(&detect2))?, cell(Some(&naive2))?, cell(None)?))
    });
    let rows = rows
        .into_iter()
        .collect::<Result<Vec<(f64, f64, f64)>, ScenarioError>>()?;

    let mut figure = Figure::new(title, "beta", "overall gain after defense", betas.to_vec());
    figure.push_series("Detect2", rows.iter().map(|r| r.0).collect());
    figure.push_series("Naive2", rows.iter().map(|r| r.1).collect());
    figure.push_series("NoDefense", rows.iter().map(|r| r.2).collect());
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 37,
        };
        let fig = run_panel_a(&cfg, &[50, 300]).unwrap();
        assert_eq!(fig.series.len(), 3);
        assert!(fig
            .series
            .iter()
            .all(|s| s.values.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn panel_b_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 41,
        };
        let fig = run_panel_b(&cfg, &[0.01, 0.1]).unwrap();
        assert_eq!(fig.series.len(), 3);
        assert!(fig
            .series
            .iter()
            .all(|s| s.values.iter().all(|v| v.is_finite())));
    }

    #[test]
    fn detect2_defends_rva_better_than_nothing() {
        let cfg = ExperimentConfig {
            scale: 0.3,
            trials: 2,
            seed: 43,
        };
        let fig = run_panel_b(&cfg, &[0.05]).unwrap();
        let by = |l: &str| fig.series.iter().find(|s| s.label == l).unwrap().values[0];
        assert!(
            by("Detect2") < by("NoDefense"),
            "Detect2 {} should reduce the undefended gain {}",
            by("Detect2"),
            by("NoDefense")
        );
    }
}
