//! Exp 4 / Fig. 9: overall gains of attacks to the **clustering
//! coefficient** as ε sweeps 1–8.
//!
//! Expected shape: MGA dominates and is comparatively stable in ε; RVA
//! generally beats RNA.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use ldp_graph::datasets::Dataset;
use ldp_protocols::Metric;
use poison_core::ScenarioError;

/// Runs the figure on a custom ε grid, optionally restricted to one
/// dataset (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_with_grid(
    cfg: &ExperimentConfig,
    epsilons: &[f64],
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    sweep_all_datasets(
        cfg,
        Metric::Clustering,
        SweepAxis::Epsilon,
        epsilons,
        "Fig 9",
        only,
    )
}

/// Runs the figure on the paper's grid ε ∈ {1..8}.
pub fn run(cfg: &ExperimentConfig, only: Option<Dataset>) -> Result<Vec<Figure>, ScenarioError> {
    run_with_grid(cfg, &grids::EPSILONS, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_finite_gains() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 23,
        };
        let figs = run_with_grid(&cfg, &[4.0], None).unwrap();
        assert_eq!(figs.len(), 4);
        for f in &figs {
            for s in &f.series {
                assert!(
                    s.values[0].is_finite(),
                    "{} not finite in {}",
                    s.label,
                    f.title
                );
            }
        }
    }
}
