//! Exp 4 / Fig. 9: overall gains of attacks to the **clustering
//! coefficient** as ε sweeps 1–8.
//!
//! Expected shape: MGA dominates and is comparatively stable in ε; RVA
//! generally beats RNA.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use poison_core::TargetMetric;

/// Runs the figure on a custom ε grid.
pub fn run_with_grid(cfg: &ExperimentConfig, epsilons: &[f64]) -> Vec<Figure> {
    sweep_all_datasets(
        cfg,
        TargetMetric::ClusteringCoefficient,
        SweepAxis::Epsilon,
        epsilons,
        "Fig 9",
    )
}

/// Runs the figure on the paper's grid ε ∈ {1..8}.
pub fn run(cfg: &ExperimentConfig) -> Vec<Figure> {
    run_with_grid(cfg, &grids::EPSILONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_finite_gains() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 23,
        };
        let figs = run_with_grid(&cfg, &[4.0]);
        assert_eq!(figs.len(), 4);
        for f in &figs {
            for s in &f.series {
                assert!(
                    s.values[0].is_finite(),
                    "{} not finite in {}",
                    s.label,
                    f.title
                );
            }
        }
    }
}
