//! Exp 6 / Fig. 11: impact of γ on attacks to the **clustering
//! coefficient**.
//!
//! Expected shape: gains rise with γ; MGA dominates, RVA second.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use ldp_graph::datasets::Dataset;
use ldp_protocols::Metric;
use poison_core::ScenarioError;

/// Runs the figure on a custom γ grid, optionally restricted to one
/// dataset (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_with_grid(
    cfg: &ExperimentConfig,
    gammas: &[f64],
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    sweep_all_datasets(
        cfg,
        Metric::Clustering,
        SweepAxis::Gamma,
        gammas,
        "Fig 11",
        only,
    )
}

/// Runs the figure on the paper's grid γ ∈ {0.001, 0.005, 0.01, 0.05, 0.1}.
pub fn run(cfg: &ExperimentConfig, only: Option<Dataset>) -> Result<Vec<Figure>, ScenarioError> {
    run_with_grid(cfg, &grids::GAMMAS, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_two_gammas() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 31,
        };
        let figs = run_with_grid(&cfg, &[0.01, 0.1], None).unwrap();
        assert_eq!(figs.len(), 4);
        assert!(figs[0]
            .series
            .iter()
            .all(|s| s.values.iter().all(|v| v.is_finite())));
    }
}
