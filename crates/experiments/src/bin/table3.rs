//! Regenerates paper Table III (default parameter settings).

fn main() {
    let opts = poison_experiments::cli::options_from_env();
    let md = poison_experiments::table3::to_markdown();
    println!("{md}");
    let _ = std::fs::create_dir_all(&opts.out_dir);
    if let Err(e) = std::fs::write(opts.out_dir.join("table3.md"), md) {
        eprintln!("warning: could not write table3.md: {e}");
    }
}
