//! Regenerates paper Table II (dataset statistics, paper vs. stand-in).

fn main() {
    let opts = poison_experiments::cli::options_from_env();
    let rows = poison_experiments::table2::run(&opts.config);
    let md = poison_experiments::table2::to_markdown(&rows);
    println!("{md}");
    let _ = std::fs::create_dir_all(&opts.out_dir);
    if let Err(e) = std::fs::write(opts.out_dir.join("table2.md"), md) {
        eprintln!("warning: could not write table2.md: {e}");
    }
}
