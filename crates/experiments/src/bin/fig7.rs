//! Regenerates paper Fig. 7. See `poison_experiments::fig7`.

fn main() {
    let opts = poison_experiments::cli::options_from_env();
    let figures = poison_experiments::fig7::run(&opts.config, opts.dataset);
    poison_experiments::cli::emit_or_exit(figures, &opts);
}
