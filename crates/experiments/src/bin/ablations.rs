//! Runs the ablation studies of DESIGN.md §7 (budget cap, padding,
//! prioritized allocation, clustering degree source).

fn main() {
    let opts = poison_experiments::cli::options_from_env();
    let figures = poison_experiments::ablations::run(&opts.config);
    poison_experiments::cli::emit_or_exit(figures, &opts);
}
