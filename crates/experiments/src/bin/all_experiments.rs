//! Regenerates every table and figure in sequence (Tables II-III,
//! Figs. 6-15). Expect minutes at the default scale.

use poison_experiments as px;
use px::{ExperimentConfig, Figure};

fn main() {
    let opts = px::cli::options_from_env();
    let cfg = &opts.config;

    let rows = px::table2::run(cfg);
    let md = px::table2::to_markdown(&rows);
    println!("{md}");
    let _ = std::fs::create_dir_all(&opts.out_dir);
    let _ = std::fs::write(opts.out_dir.join("table2.md"), md);
    let md3 = px::table3::to_markdown();
    println!("{md3}");
    let _ = std::fs::write(opts.out_dir.join("table3.md"), md3);

    type Runner = fn(&ExperimentConfig) -> Vec<Figure>;
    let phases: [(&str, Runner); 10] = [
        ("fig6", px::fig6::run),
        ("fig7", px::fig7::run),
        ("fig8", px::fig8::run),
        ("fig9", px::fig9::run),
        ("fig10", px::fig10::run),
        ("fig11", px::fig11::run),
        ("fig12", px::fig12::run),
        ("fig13", px::fig13::run),
        ("fig14", px::fig14::run),
        ("fig15", px::fig15::run),
    ];
    for (name, runner) in phases {
        let start = std::time::Instant::now();
        let figures = runner(cfg);
        px::cli::emit(&figures, &opts);
        eprintln!("== {name} done in {:.1}s ==", start.elapsed().as_secs_f64());
    }
}
