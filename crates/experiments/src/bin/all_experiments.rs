//! Regenerates every table and figure in sequence (Tables II-III,
//! Figs. 6-15). Expect minutes at the default scale.

use poison_experiments as px;
use px::{ExperimentConfig, Figure};

fn main() {
    let opts = px::cli::options_from_env();
    let cfg = &opts.config;

    let rows = px::table2::run(cfg);
    let md = px::table2::to_markdown(&rows);
    println!("{md}");
    let _ = std::fs::create_dir_all(&opts.out_dir);
    let _ = std::fs::write(opts.out_dir.join("table2.md"), md);
    let md3 = px::table3::to_markdown();
    println!("{md3}");
    let _ = std::fs::write(opts.out_dir.join("table3.md"), md3);

    type FigResult = Result<Vec<Figure>, poison_core::ScenarioError>;
    type Runner = fn(&ExperimentConfig) -> FigResult;
    type SweepRunner = fn(&ExperimentConfig, Option<ldp_graph::datasets::Dataset>) -> FigResult;
    type Phase = Box<dyn Fn(&ExperimentConfig) -> FigResult>;
    let sweep = |run: SweepRunner| move |cfg: &ExperimentConfig| run(cfg, opts.dataset);
    let phases: [(&str, Phase); 10] = [
        ("fig6", Box::new(sweep(px::fig6::run))),
        ("fig7", Box::new(sweep(px::fig7::run))),
        ("fig8", Box::new(sweep(px::fig8::run))),
        ("fig9", Box::new(sweep(px::fig9::run))),
        ("fig10", Box::new(sweep(px::fig10::run))),
        ("fig11", Box::new(sweep(px::fig11::run))),
        ("fig12", Box::new(px::fig12::run as Runner)),
        ("fig13", Box::new(px::fig13::run as Runner)),
        ("fig14", Box::new(px::fig14::run as Runner)),
        ("fig15", Box::new(px::fig15::run as Runner)),
    ];
    for (name, runner) in phases {
        let start = std::time::Instant::now();
        px::cli::emit_or_exit(runner(cfg), &opts);
        eprintln!("== {name} done in {:.1}s ==", start.elapsed().as_secs_f64());
    }
}
