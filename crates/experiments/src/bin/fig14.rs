//! Regenerates paper Fig. 14. See `poison_experiments::fig14`.

fn main() {
    let opts = poison_experiments::cli::options_from_env();
    let figures = poison_experiments::fig14::run(&opts.config);
    poison_experiments::cli::emit_or_exit(figures, &opts);
}
