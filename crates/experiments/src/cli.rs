//! Minimal argument parsing and output plumbing shared by the experiment
//! binaries.
//!
//! Flags (all optional):
//! `--trials N` `--scale F` `--seed S` `--out DIR` `--threads N`
//! `--dataset NAME` `--quiet`
//!
//! `--threads` caps the shared parallel runtime's fan-out
//! ([`ldp_graph::runtime::set_thread_cap`]); results are bit-identical at
//! any cap. `--dataset` restricts the four-panel sweep figures
//! (Figs. 6–11) to one dataset.
//!
//! Every binary prints each figure as an ASCII chart plus a markdown table
//! and writes CSV/markdown files under the output directory (default
//! `results/`).

use crate::config::ExperimentConfig;
use crate::output::Figure;
use ldp_graph::datasets::Dataset;
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Output directory for CSV/markdown artifacts.
    pub out_dir: PathBuf,
    /// Cap on the parallel runtime's worker threads (None = machine).
    pub threads: Option<usize>,
    /// Restrict four-panel sweeps to one dataset (None = all four).
    pub dataset: Option<Dataset>,
    /// Suppress the ASCII charts on stdout.
    pub quiet: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            config: ExperimentConfig::default(),
            out_dir: PathBuf::from("results"),
            threads: None,
            dataset: None,
            quiet: false,
        }
    }
}

/// Parses an argument list (without the program name).
///
/// # Errors
/// Returns a human-readable message for unknown flags or bad values.
pub fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut opts = CliOptions::default();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i)
                .ok_or_else(|| format!("flag {} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--trials" => {
                opts.config.trials = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
                if opts.config.trials == 0 {
                    return Err("--trials must be >= 1".into());
                }
            }
            "--scale" => {
                opts.config.scale = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
                if opts.config.scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--seed" => {
                opts.config.seed = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => {
                opts.out_dir = PathBuf::from(take_value(&mut i)?);
            }
            "--threads" => {
                let threads: usize = take_value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
                opts.threads = Some(threads);
            }
            "--dataset" => {
                let name = take_value(&mut i)?;
                opts.dataset = Some(Dataset::from_name(name).ok_or_else(|| {
                    format!(
                        "--dataset: unknown dataset {name} (expected one of \
                         Facebook, Enron, AstroPh, Gplus)"
                    )
                })?);
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Parses `std::env::args`, exiting with a message on error, and installs
/// the `--threads` cap into the shared parallel runtime.
pub fn options_from_env() -> CliOptions {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => {
            if let Some(threads) = opts.threads {
                ldp_graph::runtime::set_thread_cap(threads);
            }
            opts
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: [--trials N] [--scale F] [--seed S] [--out DIR] \
                 [--threads N] [--dataset NAME] [--quiet]"
            );
            std::process::exit(2);
        }
    }
}

/// Prints and persists a batch of figures.
pub fn emit(figures: &[Figure], opts: &CliOptions) {
    for fig in figures {
        if !opts.quiet {
            println!("{}", fig.to_ascii_chart());
            println!("{}", fig.to_markdown());
        }
        if let Err(e) = fig.write_to_dir(&opts.out_dir) {
            eprintln!("warning: could not write {}: {e}", fig.title);
        }
    }
}

/// Unwraps an experiment result and emits its figures; a scenario error is
/// reported and exits nonzero instead of panicking mid-sweep.
pub fn emit_or_exit(figures: Result<Vec<Figure>, poison_core::ScenarioError>, opts: &CliOptions) {
    match figures {
        Ok(figures) => emit(&figures, opts),
        Err(e) => {
            eprintln!("error: scenario failed: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_without_args() {
        let o = parse_args(&[]).unwrap();
        assert_eq!(o.config.trials, ExperimentConfig::default().trials);
        assert_eq!(o.out_dir, PathBuf::from("results"));
        assert_eq!(o.threads, None);
        assert_eq!(o.dataset, None);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse_args(&s(&[
            "--trials",
            "9",
            "--scale",
            "0.5",
            "--seed",
            "123",
            "--out",
            "/tmp/x",
            "--threads",
            "3",
            "--dataset",
            "enron",
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(o.config.trials, 9);
        assert_eq!(o.config.scale, 0.5);
        assert_eq!(o.config.seed, 123);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.dataset, Some(Dataset::Enron));
        assert!(o.quiet);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&["--trials", "0"])).is_err());
        assert!(parse_args(&s(&["--scale", "-1"])).is_err());
        assert!(parse_args(&s(&["--wat"])).is_err());
        assert!(parse_args(&s(&["--trials"])).is_err());
    }

    #[test]
    fn rejects_bad_threads() {
        assert!(parse_args(&s(&["--threads", "0"]))
            .unwrap_err()
            .contains("--threads"));
        assert!(parse_args(&s(&["--threads", "many"]))
            .unwrap_err()
            .contains("--threads"));
        assert!(parse_args(&s(&["--threads"])).is_err());
    }

    #[test]
    fn rejects_unknown_dataset() {
        let err = parse_args(&s(&["--dataset", "orkut"])).unwrap_err();
        assert!(err.contains("unknown dataset"));
        assert!(parse_args(&s(&["--dataset"])).is_err());
    }

    #[test]
    fn dataset_parse_is_case_insensitive() {
        let o = parse_args(&s(&["--dataset", "GPLUS"])).unwrap();
        assert_eq!(o.dataset, Some(Dataset::Gplus));
    }
}
