//! Exp 3 / Fig. 8: impact of the target fraction γ on attacks to **degree
//! centrality** (ε and β at Table III defaults).
//!
//! Expected shape: gains rise with γ (a larger attack surface); MGA
//! dominates throughout.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use ldp_graph::datasets::Dataset;
use ldp_protocols::Metric;
use poison_core::ScenarioError;

/// Runs the figure on a custom γ grid, optionally restricted to one
/// dataset (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_with_grid(
    cfg: &ExperimentConfig,
    gammas: &[f64],
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    sweep_all_datasets(cfg, Metric::Degree, SweepAxis::Gamma, gammas, "Fig 8", only)
}

/// Runs the figure on the paper's grid γ ∈ {0.001, 0.005, 0.01, 0.05, 0.1}.
pub fn run(cfg: &ExperimentConfig, only: Option<Dataset>) -> Result<Vec<Figure>, ScenarioError> {
    run_with_grid(cfg, &grids::GAMMAS, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_rises_with_gamma() {
        let cfg = ExperimentConfig {
            scale: 0.3,
            trials: 2,
            seed: 19,
        };
        let figs = run_with_grid(&cfg, &[0.01, 0.1], None).unwrap();
        let mga = figs[0].series.iter().find(|s| s.label == "MGA").unwrap();
        assert!(
            mga.values[1] > mga.values[0],
            "MGA at γ=0.1 ({}) should exceed γ=0.01 ({})",
            mga.values[1],
            mga.values[0]
        );
    }
}
