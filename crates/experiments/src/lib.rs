//! # poison-experiments
//!
//! The evaluation harness: one module (and one binary) per table/figure of
//! the paper's §VIII. Each experiment returns [`output::Figure`] values
//! that render as aligned text tables, CSV, and ASCII charts; the binaries
//! write them under `results/`.
//!
//! | paper artifact | module | binary |
//! |----------------|--------|--------|
//! | Table II (datasets) | [`table2`] | `table2` |
//! | Table III (defaults) | [`table3`] | `table3` |
//! | Fig. 6 (degree centrality vs ε) | [`fig6`] | `fig6` |
//! | Fig. 7 (degree centrality vs β) | [`fig7`] | `fig7` |
//! | Fig. 8 (degree centrality vs γ) | [`fig8`] | `fig8` |
//! | Fig. 9 (clustering coefficient vs ε) | [`fig9`] | `fig9` |
//! | Fig. 10 (clustering coefficient vs β) | [`fig10`] | `fig10` |
//! | Fig. 11 (clustering coefficient vs γ) | [`fig11`] | `fig11` |
//! | Fig. 12 (countermeasures, degree) | [`fig12`] | `fig12` |
//! | Fig. 13 (countermeasures, clustering) | [`fig13`] | `fig13` |
//! | Fig. 14 (LF-GDPR vs LDPGen, cc) | [`fig14`] | `fig14` |
//! | Fig. 15 (LF-GDPR vs LDPGen, modularity) | [`fig15`] | `fig15` |
//!
//! The experiments run on seeded synthetic stand-ins scaled to ~1,000
//! nodes per dataset by default (`ExperimentConfig::scale` adjusts this);
//! DESIGN.md §2 records the substitution and EXPERIMENTS.md the measured
//! outcomes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod cli;
pub mod config;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod runner;
pub mod stats;
pub mod sweep;
pub mod table2;
pub mod table3;

pub use config::ExperimentConfig;
pub use output::{Figure, Series};
