//! Exp 9 / Fig. 14: attacks on LF-GDPR and LDPGen for the **clustering
//! coefficient**, sweeping ε (Facebook stand-in).
//!
//! Panel (a) is the LF-GDPR pipeline; panel (b) runs the same three
//! strategies against LDPGen's degree-vector channel. Expected shape: all
//! attacks land on both protocols; MGA generally best.

use crate::config::{defaults, grids, ExperimentConfig};
use crate::output::Figure;
use crate::runner::{default_threads, mean_gain_over_trials, parallel_map};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::{LdpGen, LfGdpr};
use poison_core::ldpgen_attack::{run_ldpgen_attack, LdpGenMetric};
use poison_core::{
    run_lfgdpr_attack, AttackStrategy, MgaOptions, TargetMetric, TargetSelection, ThreatModel,
};

/// Panel (a): LF-GDPR clustering-coefficient gains over ε.
pub fn run_panel_a(cfg: &ExperimentConfig, epsilons: &[f64]) -> Figure {
    let graph = cfg.graph_for(Dataset::Facebook);
    let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ 0x0F14_000A);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut threat_rng,
    );
    let points: Vec<(usize, f64)> = epsilons.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, epsilon)| {
        let protocol = LfGdpr::new(epsilon).expect("positive epsilon grid");
        AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                mean_gain_over_trials(cfg.trials, cfg.seed ^ ((xi as u64) << 12), |_, seed| {
                    run_lfgdpr_attack(
                        &graph,
                        &protocol,
                        &threat,
                        strategy,
                        TargetMetric::ClusteringCoefficient,
                        MgaOptions::default(),
                        seed,
                    )
                })
            })
            .collect::<Vec<f64>>()
    });
    build_figure(
        "Fig 14(a) LF-GDPR",
        epsilons,
        &rows,
        "clustering-coefficient gain",
    )
}

/// Panel (b): LDPGen clustering-coefficient gains over ε.
pub fn run_panel_b(cfg: &ExperimentConfig, epsilons: &[f64]) -> Figure {
    let graph = cfg.graph_for(Dataset::Facebook);
    let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ 0x0F14_000B);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut threat_rng,
    );
    let points: Vec<(usize, f64)> = epsilons.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, epsilon)| {
        let protocol = LdpGen::with_defaults(epsilon).expect("positive epsilon grid");
        AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                mean_gain_over_trials(cfg.trials, cfg.seed ^ ((xi as u64) << 12), |_, seed| {
                    run_ldpgen_attack(
                        &graph,
                        &protocol,
                        &threat,
                        strategy,
                        LdpGenMetric::ClusteringCoefficient,
                        None,
                        seed,
                    )
                })
            })
            .collect::<Vec<f64>>()
    });
    build_figure(
        "Fig 14(b) LDPGen",
        epsilons,
        &rows,
        "clustering-coefficient gain",
    )
}

pub(crate) fn build_figure(title: &str, xs: &[f64], rows: &[Vec<f64>], y_label: &str) -> Figure {
    let mut figure = Figure::new(title, "epsilon", y_label, xs.to_vec());
    for (si, strategy) in AttackStrategy::ALL.iter().enumerate() {
        figure.push_series(strategy.name(), rows.iter().map(|r| r[si]).collect());
    }
    figure
}

/// Runs both panels on the paper's ε grid.
pub fn run(cfg: &ExperimentConfig) -> Vec<Figure> {
    vec![
        run_panel_a(cfg, &grids::EPSILONS),
        run_panel_b(cfg, &grids::EPSILONS),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 53,
        };
        let a = run_panel_a(&cfg, &[4.0]);
        let b = run_panel_b(&cfg, &[4.0]);
        for fig in [a, b] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig
                .series
                .iter()
                .all(|s| s.values.iter().all(|v| v.is_finite())));
        }
    }
}
