//! Exp 9 / Fig. 14: attacks on LF-GDPR and LDPGen for the **clustering
//! coefficient**, sweeping ε (Facebook stand-in).
//!
//! Both panels run through one generic ε-panel helper over the
//! [`GraphLdpProtocol`] trait — the only difference between them is which
//! protocol the ε grid instantiates. Expected shape: all attacks land on
//! both protocols; MGA generally best.

use crate::config::{defaults, grids, ExperimentConfig};
use crate::output::Figure;
use crate::runner::{default_threads, parallel_map};
use ldp_graph::datasets::Dataset;
use ldp_graph::{CsrGraph, Xoshiro256pp};
use ldp_protocols::{GraphLdpProtocol, LdpGen, LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    attack_for, AttackStrategy, MgaOptions, ScenarioError, TargetSelection, ThreatModel,
};

/// The threat model both figures share (tagged per panel so the two
/// protocols face independently drawn targets, as in the paper runs).
pub(crate) fn panel_threat(cfg: &ExperimentConfig, graph: &CsrGraph, tag: u64) -> ThreatModel {
    let mut threat_rng = Xoshiro256pp::new(cfg.seed ^ tag);
    ThreatModel::from_fractions(
        graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut threat_rng,
    )
}

/// One ε-sweep panel for *any* protocol: per grid point, instantiate the
/// protocol at ε and run all three attacks through the scenario engine.
/// This is the shape both Fig. 14 and Fig. 15 panels share — the protocol
/// enters only as a constructor, so adding a third protocol to these
/// figures is a one-line factory.
///
/// # Errors
/// Propagates the first scenario failure.
#[allow(clippy::too_many_arguments)] // one slot per figure knob, all named at call sites
pub(crate) fn epsilon_panel<P>(
    cfg: &ExperimentConfig,
    graph: &CsrGraph,
    threat: &ThreatModel,
    partition: Option<&[usize]>,
    make_protocol: impl Fn(f64) -> P + Sync,
    metric: Metric,
    epsilons: &[f64],
    title: &str,
    y_label: &str,
) -> Result<Figure, ScenarioError>
where
    P: GraphLdpProtocol + Copy,
{
    let points: Vec<(usize, f64)> = epsilons.iter().copied().enumerate().collect();
    let rows = parallel_map(points, default_threads(), |&(xi, epsilon)| {
        let protocol = make_protocol(epsilon);
        AttackStrategy::ALL
            .iter()
            .map(|&strategy| {
                let mut builder = Scenario::on(protocol)
                    .attack(attack_for(strategy, MgaOptions::default()))
                    .metric(metric)
                    .threat(threat.clone())
                    .trials(cfg.trials)
                    .seed(cfg.seed ^ ((xi as u64) << 12));
                if let Some(partition) = partition {
                    builder = builder.partition(partition);
                }
                Ok(builder.run(graph)?.mean_gain())
            })
            .collect::<Result<Vec<f64>, ScenarioError>>()
    });
    let rows = rows
        .into_iter()
        .collect::<Result<Vec<Vec<f64>>, ScenarioError>>()?;
    Ok(build_figure(title, epsilons, &rows, y_label))
}

/// Panel (a): LF-GDPR clustering-coefficient gains over ε.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_a(cfg: &ExperimentConfig, epsilons: &[f64]) -> Result<Figure, ScenarioError> {
    let graph = cfg.graph_for(Dataset::Facebook);
    let threat = panel_threat(cfg, &graph, 0x0F14_000A);
    epsilon_panel(
        cfg,
        &graph,
        &threat,
        None,
        |epsilon| LfGdpr::new(epsilon).expect("positive epsilon grid"),
        Metric::Clustering,
        epsilons,
        "Fig 14(a) LF-GDPR",
        "clustering-coefficient gain",
    )
}

/// Panel (b): LDPGen clustering-coefficient gains over ε.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_b(cfg: &ExperimentConfig, epsilons: &[f64]) -> Result<Figure, ScenarioError> {
    let graph = cfg.graph_for(Dataset::Facebook);
    let threat = panel_threat(cfg, &graph, 0x0F14_000B);
    epsilon_panel(
        cfg,
        &graph,
        &threat,
        None,
        |epsilon| LdpGen::with_defaults(epsilon).expect("positive epsilon grid"),
        Metric::Clustering,
        epsilons,
        "Fig 14(b) LDPGen",
        "clustering-coefficient gain",
    )
}

pub(crate) fn build_figure(title: &str, xs: &[f64], rows: &[Vec<f64>], y_label: &str) -> Figure {
    let mut figure = Figure::new(title, "epsilon", y_label, xs.to_vec());
    for (si, strategy) in AttackStrategy::ALL.iter().enumerate() {
        figure.push_series(strategy.name(), rows.iter().map(|r| r[si]).collect());
    }
    figure
}

/// Runs both panels on the paper's ε grid.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Figure>, ScenarioError> {
    Ok(vec![
        run_panel_a(cfg, &grids::EPSILONS)?,
        run_panel_b(cfg, &grids::EPSILONS)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 53,
        };
        let a = run_panel_a(&cfg, &[4.0]).unwrap();
        let b = run_panel_b(&cfg, &[4.0]).unwrap();
        for fig in [a, b] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig
                .series
                .iter()
                .all(|s| s.values.iter().all(|v| v.is_finite())));
        }
    }
}
