//! Exp 2 / Fig. 7: impact of the fake-user fraction β on attacks to
//! **degree centrality** (ε and γ at Table III defaults).
//!
//! Expected shape: gains rise with β for all strategies; MGA > RVA > RNA.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use ldp_graph::datasets::Dataset;
use ldp_protocols::Metric;
use poison_core::ScenarioError;

/// Runs the figure on a custom β grid, optionally restricted to one
/// dataset (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_with_grid(
    cfg: &ExperimentConfig,
    betas: &[f64],
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    sweep_all_datasets(cfg, Metric::Degree, SweepAxis::Beta, betas, "Fig 7", only)
}

/// Runs the figure on the paper's grid β ∈ {0.001, 0.005, 0.01, 0.05, 0.1}.
pub fn run(cfg: &ExperimentConfig, only: Option<Dataset>) -> Result<Vec<Figure>, ScenarioError> {
    run_with_grid(cfg, &grids::BETAS, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_rises_with_beta() {
        let cfg = ExperimentConfig {
            scale: 0.3,
            trials: 2,
            seed: 17,
        };
        let figs = run_with_grid(&cfg, &[0.01, 0.1], None).unwrap();
        let mga = figs[0].series.iter().find(|s| s.label == "MGA").unwrap();
        assert!(
            mga.values[1] > mga.values[0],
            "MGA at β=0.1 ({}) should exceed β=0.01 ({})",
            mga.values[1],
            mga.values[0]
        );
    }
}
