//! Ablation studies (DESIGN.md §7) — design choices the paper asserts but
//! does not isolate:
//!
//! * **A1 — connection-budget cap.** MGA capped at `⌊d̃⌋` (paper) vs.
//!   uncapped: uncapped buys more degree-centrality gain but lights up the
//!   Detect1/Naive1 detectors.
//! * **A2 — MGA padding.** Random non-target padding on/off: gains are
//!   unchanged, Detect1's flag counts are not.
//! * **A3 — prioritized fake↔fake allocation** for MGA-cc (§VI): the
//!   fake-clique pre-pay roughly doubles the clustering gain.
//! * **A4 — clustering degree source.** Paper's `ẽd` (perturbed-row
//!   degree) vs. LF-GDPR's reported degree: honest estimation error and
//!   MGA gain under each.

use crate::config::{defaults, ExperimentConfig};
use crate::output::Figure;
use ldp_graph::datasets::Dataset;
use ldp_graph::metrics::local_clustering_coefficients;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::lfgdpr::{estimate_clustering_with, DegreeSource};
use ldp_protocols::{LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    craft_reports, AttackStrategy, AttackerKnowledge, Defense, Mga, MgaOptions, ScenarioError,
    TargetMetric, TargetSelection, ThreatModel,
};
use poison_defense::FrequentItemsetDefense;

/// Mean MGA gain through the scenario engine (exact mode, runner seed
/// schedule).
fn mga_mean_gain(
    cfg: &ExperimentConfig,
    graph: &ldp_graph::CsrGraph,
    protocol: &LfGdpr,
    threat: &ThreatModel,
    metric: Metric,
    options: MgaOptions,
    seed: u64,
) -> Result<f64, ScenarioError> {
    Ok(Scenario::on(*protocol)
        .attack(Mga::new(options))
        .metric(metric)
        .threat(threat.clone())
        .exact()
        .trials(cfg.trials)
        .seed(seed)
        .run(graph)?
        .mean_gain())
}

fn setup(cfg: &ExperimentConfig) -> (ldp_graph::CsrGraph, LfGdpr, ThreatModel) {
    let graph = cfg.graph_for(Dataset::Facebook);
    let protocol = LfGdpr::new(defaults::EPSILON).expect("default epsilon valid");
    let mut rng = Xoshiro256pp::new(cfg.seed ^ 0xAB1);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        defaults::GAMMA,
        TargetSelection::UniformRandom,
        &mut rng,
    );
    (graph, protocol, threat)
}

/// A1: gain and Detect1 flag rate, capped vs. uncapped MGA (degree
/// centrality). The cap only matters when `⌊d̃⌋ < r`, so this ablation
/// runs at ε = 8 (smallest budget) with γ = 0.25 (largest target set) —
/// the regime where stealth costs the attacker real gain.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn budget_cap_ablation(cfg: &ExperimentConfig) -> Result<Figure, ScenarioError> {
    let graph = cfg.graph_for(Dataset::Facebook);
    let protocol = LfGdpr::new(8.0).expect("epsilon 8 valid");
    let mut rng = Xoshiro256pp::new(cfg.seed ^ 0xAB1);
    let threat = ThreatModel::from_fractions(
        &graph,
        defaults::BETA,
        0.25,
        TargetSelection::UniformRandom,
        &mut rng,
    );
    let run_with = |options: MgaOptions| -> Result<(f64, f64), ScenarioError> {
        let gain = mga_mean_gain(
            cfg,
            &graph,
            &protocol,
            &threat,
            Metric::Degree,
            options,
            cfg.seed ^ 0xA1,
        )?;
        // Detection recall of Detect1 against this crafting.
        let knowledge =
            AttackerKnowledge::derive(&protocol, threat.population(), graph.average_degree());
        let extended = graph.with_isolated_nodes(threat.m_fake);
        let base = Xoshiro256pp::new(cfg.seed ^ 0xA1F);
        let mut reports = protocol.collect_honest(&extended, &base);
        let mut rng = base.derive(0xC4AF);
        let crafted = craft_reports(
            AttackStrategy::Mga,
            TargetMetric::DegreeCentrality,
            &protocol,
            &threat,
            &knowledge,
            options,
            &mut rng,
        );
        for (offset, report) in crafted.into_iter().enumerate() {
            reports[threat.n_genuine + offset] = report;
        }
        let defense = FrequentItemsetDefense::new(100);
        let mut defense_rng = base.derive(0xDEF);
        let app = defense.filter_reports(&reports, &protocol, &mut defense_rng);
        let recall = app.flagged[threat.n_genuine..]
            .iter()
            .filter(|&&f| f)
            .count() as f64
            / threat.m_fake as f64;
        Ok((gain, recall))
    };
    let capped = run_with(MgaOptions::default())?;
    let uncapped = run_with(MgaOptions {
        budget_override: Some(usize::MAX),
        ..Default::default()
    })?;
    let mut fig = Figure::new(
        "Ablation A1: MGA budget cap",
        "variant (0=capped, 1=uncapped)",
        "gain / Detect1 recall",
        vec![0.0, 1.0],
    );
    fig.push_series("gain", vec![capped.0, uncapped.0]);
    fig.push_series("detect1_recall", vec![capped.1, uncapped.1]);
    Ok(fig)
}

/// A2: MGA padding on/off — gain and Detect1 genuine-flag (false-positive)
/// counts.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn padding_ablation(cfg: &ExperimentConfig) -> Result<Figure, ScenarioError> {
    let (graph, protocol, threat) = setup(cfg);
    let gain_with = |options: MgaOptions| {
        mga_mean_gain(
            cfg,
            &graph,
            &protocol,
            &threat,
            Metric::Degree,
            options,
            cfg.seed ^ 0xA2,
        )
    };
    let padded = gain_with(MgaOptions::default())?;
    let bare = gain_with(MgaOptions {
        pad_to_budget: false,
        ..Default::default()
    })?;
    let mut fig = Figure::new(
        "Ablation A2: MGA padding",
        "variant (0=padded, 1=bare)",
        "degree-centrality gain",
        vec![0.0, 1.0],
    );
    fig.push_series("gain", vec![padded, bare]);
    Ok(fig)
}

/// A3: prioritized fake↔fake allocation for MGA-cc.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn prioritization_ablation(cfg: &ExperimentConfig) -> Result<Figure, ScenarioError> {
    let (graph, protocol, threat) = setup(cfg);
    let gain_with = |options: MgaOptions| {
        mga_mean_gain(
            cfg,
            &graph,
            &protocol,
            &threat,
            Metric::Clustering,
            options,
            cfg.seed ^ 0xA3,
        )
    };
    let with = gain_with(MgaOptions::default())?;
    let without = gain_with(MgaOptions {
        prioritize_fake_edges: false,
        ..Default::default()
    })?;
    let mut fig = Figure::new(
        "Ablation A3: MGA-cc prioritized allocation",
        "variant (0=prioritized, 1=flat)",
        "clustering-coefficient gain",
        vec![0.0, 1.0],
    );
    fig.push_series("gain", vec![with, without]);
    Ok(fig)
}

/// A4: honest clustering-estimation error under the two degree sources.
pub fn degree_source_ablation(cfg: &ExperimentConfig) -> Figure {
    let (graph, protocol, _) = setup(cfg);
    let truth = local_clustering_coefficients(&graph);
    let base = Xoshiro256pp::new(cfg.seed ^ 0xA4);
    let view = protocol.aggregate(&protocol.collect_honest(&graph, &base));
    let mae = |source: DegreeSource| {
        let est = estimate_clustering_with(&view, source);
        est.cc
            .iter()
            .zip(&truth)
            .map(|(e, t)| (e - t).abs())
            .sum::<f64>()
            / truth.len() as f64
    };
    let mut fig = Figure::new(
        "Ablation A4: clustering degree source",
        "variant (0=perturbed-row, 1=reported)",
        "honest-estimation MAE",
        vec![0.0, 1.0],
    );
    fig.push_series(
        "mae",
        vec![mae(DegreeSource::PerturbedRow), mae(DegreeSource::Reported)],
    );
    fig
}

/// Runs all four ablations.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Figure>, ScenarioError> {
    Ok(vec![
        budget_cap_ablation(cfg)?,
        padding_ablation(cfg)?,
        prioritization_ablation(cfg)?,
        degree_source_ablation(cfg),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.08,
            trials: 1,
            seed: 61,
        }
    }

    #[test]
    fn budget_cap_uncapped_gains_more() {
        let fig = budget_cap_ablation(&smoke_cfg()).unwrap();
        let gain = &fig.series[0].values;
        assert!(
            gain[1] >= gain[0],
            "uncapped MGA ({}) should gain at least the capped one ({})",
            gain[1],
            gain[0]
        );
    }

    #[test]
    fn prioritization_pays_off() {
        let fig = prioritization_ablation(&smoke_cfg()).unwrap();
        let gain = &fig.series[0].values;
        assert!(
            gain[0] > gain[1],
            "prioritized allocation ({}) should beat flat ({})",
            gain[0],
            gain[1]
        );
    }

    #[test]
    fn reported_degree_estimates_better_honestly() {
        let fig = degree_source_ablation(&smoke_cfg());
        let mae = &fig.series[0].values;
        assert!(
            mae[1] < mae[0],
            "reported-degree MAE ({}) should undercut perturbed-row MAE ({})",
            mae[1],
            mae[0]
        );
    }

    #[test]
    fn padding_leaves_gain_roughly_unchanged() {
        let fig = padding_ablation(&smoke_cfg()).unwrap();
        let gain = &fig.series[0].values;
        assert!(gain[0].is_finite() && gain[1].is_finite());
        // Padding adds random non-target edges only; the target-edge count
        // is identical, so the gain ratio stays near 1.
        let ratio = gain[0] / gain[1].max(1e-9);
        assert!(
            (0.5..2.0).contains(&ratio),
            "gain ratio {ratio} too far from 1"
        );
    }
}
