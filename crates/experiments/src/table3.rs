//! Table III: the default parameter settings every experiment uses unless
//! it sweeps the parameter itself.

use crate::config::defaults;

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct ParameterRow {
    /// Symbol as used in the paper.
    pub parameter: &'static str,
    /// Default value.
    pub value: f64,
    /// Description.
    pub description: &'static str,
}

/// The table's rows.
pub fn rows() -> Vec<ParameterRow> {
    vec![
        ParameterRow {
            parameter: "beta",
            value: defaults::BETA,
            description: "The fraction of fake users",
        },
        ParameterRow {
            parameter: "gamma",
            value: defaults::GAMMA,
            description: "The fraction of target users",
        },
        ParameterRow {
            parameter: "epsilon",
            value: defaults::EPSILON,
            description: "Privacy budget",
        },
    ]
}

/// Markdown rendering.
pub fn to_markdown() -> String {
    let mut out = String::from(
        "### Table III: default parameter settings\n\
         | Parameter | Default setting | Description |\n|---|---|---|\n",
    );
    for row in rows() {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            row.parameter, row.value, row.description
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_defaults() {
        let rows = rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value, 0.05);
        assert_eq!(rows[1].value, 0.05);
        assert_eq!(rows[2].value, 4.0);
    }

    #[test]
    fn markdown_contains_descriptions() {
        let md = to_markdown();
        assert!(md.contains("fraction of fake users"));
        assert!(md.contains("Privacy budget"));
    }
}
