//! Exp 1 / Fig. 6: overall gains of attacks to **degree centrality** as the
//! privacy budget ε sweeps 1–8 (four panels, one per dataset).
//!
//! Expected shape (paper §VIII-B): MGA and RVA fall as ε grows (a larger
//! budget shrinks the perturbed average degree and with it the connection
//! budget); RNA is flat (always a single crafted edge); MGA dominates
//! everywhere.

use crate::config::{grids, ExperimentConfig};
use crate::output::Figure;
use crate::sweep::{sweep_all_datasets, SweepAxis};
use ldp_graph::datasets::Dataset;
use ldp_protocols::Metric;
use poison_core::ScenarioError;

/// Runs the figure on a custom ε grid, optionally restricted to one
/// dataset (the `--dataset` flag).
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_with_grid(
    cfg: &ExperimentConfig,
    epsilons: &[f64],
    only: Option<Dataset>,
) -> Result<Vec<Figure>, ScenarioError> {
    sweep_all_datasets(
        cfg,
        Metric::Degree,
        SweepAxis::Epsilon,
        epsilons,
        "Fig 6",
        only,
    )
}

/// Runs the figure on the paper's grid ε ∈ {1..8}.
pub fn run(cfg: &ExperimentConfig, only: Option<Dataset>) -> Result<Vec<Figure>, ScenarioError> {
    run_with_grid(cfg, &grids::EPSILONS, only)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_two_epsilons_one_dataset_each() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 11,
        };
        let figs = run_with_grid(&cfg, &[1.0, 8.0], None).unwrap();
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.x.len(), 2);
            assert_eq!(f.series.len(), 4);
        }
    }

    #[test]
    fn rva_gain_decreases_with_epsilon() {
        // The ε-trend needs a realistically sparse graph: at tiny scales
        // the stand-in's density is inflated and the noise-difference term
        // that drives the paper's downward RVA slope no longer dominates.
        let cfg = ExperimentConfig {
            scale: 1.0,
            trials: 2,
            seed: 13,
        };
        let fig = crate::sweep::sweep_dataset(
            &cfg,
            ldp_graph::datasets::Dataset::Facebook,
            poison_core::Metric::Degree,
            crate::sweep::SweepAxis::Epsilon,
            &[1.0, 8.0],
            "Fig 6",
        )
        .unwrap();
        let rva = fig.series.iter().find(|s| s.label == "RVA").unwrap();
        assert!(
            rva.values[0] > rva.values[1],
            "RVA at ε=1 ({}) should exceed ε=8 ({})",
            rva.values[0],
            rva.values[1]
        );
    }
}
