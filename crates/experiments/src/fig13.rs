//! Exp 8 / Fig. 13: countermeasures against attacks to the **clustering
//! coefficient** (Facebook stand-in).
//!
//! Panel (a): Detect1 vs. Naive1 against MGA over flag thresholds
//! {50, 75, 100, 125, 150}; panel (b): Detect2 vs. Naive2 against RVA over
//! β — gains after defense stay below the undefended attack but never
//! reach zero, the paper's "defenses are insufficient" takeaway.

use crate::config::{grids, ExperimentConfig};
use crate::fig12::{panel_beta_sweep, panel_threshold_sweep};
use crate::output::Figure;
use ldp_protocols::Metric;
use poison_core::{AttackStrategy, ScenarioError};

/// Panel (a): threshold sweep against MGA on the clustering coefficient.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_a(cfg: &ExperimentConfig, thresholds: &[usize]) -> Result<Figure, ScenarioError> {
    panel_threshold_sweep(
        cfg,
        Metric::Clustering,
        thresholds,
        AttackStrategy::Mga,
        "Fig 13(a)",
    )
}

/// Panel (b): β sweep against RVA on the clustering coefficient.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run_panel_b(cfg: &ExperimentConfig, betas: &[f64]) -> Result<Figure, ScenarioError> {
    panel_beta_sweep(
        cfg,
        Metric::Clustering,
        betas,
        AttackStrategy::Rva,
        "Fig 13(b)",
    )
}

/// Runs both panels on the paper's grids.
///
/// # Errors
/// Propagates the first scenario failure.
pub fn run(cfg: &ExperimentConfig) -> Result<Vec<Figure>, ScenarioError> {
    Ok(vec![
        run_panel_a(cfg, &grids::FIG13A_THRESHOLDS)?,
        run_panel_b(cfg, &grids::FIG12B_BETAS)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_panels_smoke() {
        let cfg = ExperimentConfig {
            scale: 0.25,
            trials: 1,
            seed: 47,
        };
        let a = run_panel_a(&cfg, &[100]).unwrap();
        let b = run_panel_b(&cfg, &[0.05]).unwrap();
        for fig in [a, b] {
            assert_eq!(fig.series.len(), 3);
            assert!(fig
                .series
                .iter()
                .all(|s| s.values.iter().all(|v| v.is_finite())));
        }
    }
}
