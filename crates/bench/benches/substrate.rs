//! Substrate performance: bitset kernels, graph construction, exact
//! metrics, generators, and randomized-response throughput. These are the
//! primitives every experiment spends its time in.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_graph::datasets::Dataset;
use ldp_graph::generate::{barabasi_albert, erdos_renyi_gnp, holme_kim};
use ldp_graph::metrics::{local_clustering_coefficients, triangles_per_node};
use ldp_graph::{BitMatrix, BitSet, CsrGraph, Xoshiro256pp};
use ldp_mechanisms::RandomizedResponse;

fn bench_bitset_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    for nbits in [4_096usize, 65_536] {
        let a = BitSet::from_indices(nbits, (0..nbits).step_by(7));
        let b = BitSet::from_indices(nbits, (0..nbits).step_by(11));
        group.bench_with_input(
            BenchmarkId::new("intersection_count", nbits),
            &nbits,
            |bench, _| bench.iter(|| black_box(a.intersection_count(&b))),
        );
        group.bench_with_input(BenchmarkId::new("iter_ones", nbits), &nbits, |bench, _| {
            bench.iter(|| black_box(a.iter_ones().sum::<usize>()))
        });
    }
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::new(1);
    let g = erdos_renyi_gnp(2_000, 0.01, &mut rng).unwrap();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    c.bench_function("csr_from_edges_2000", |bench| {
        bench.iter(|| CsrGraph::from_edges(2_000, black_box(&edges)).unwrap())
    });
}

fn bench_triangle_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangles");
    let mut rng = Xoshiro256pp::new(2);
    let sparse = barabasi_albert(2_000, 10, &mut rng).unwrap();
    group.bench_function("csr_sparse_2000", |bench| {
        bench.iter(|| black_box(triangles_per_node(&sparse)))
    });
    let mut rng = Xoshiro256pp::new(3);
    let dense_graph = erdos_renyi_gnp(1_000, 0.2, &mut rng).unwrap();
    let dense = BitMatrix::from_csr(&dense_graph);
    group.bench_function("bitmatrix_dense_1000", |bench| {
        bench.iter(|| black_box(dense.triangles_per_node()))
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::new(4);
    let g = holme_kim(3_000, 10, 0.6, &mut rng).unwrap();
    c.bench_function("local_clustering_3000", |bench| {
        bench.iter(|| black_box(local_clustering_coefficients(&g)))
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    group.bench_function("holme_kim_5000_m10", |bench| {
        bench.iter(|| {
            let mut rng = Xoshiro256pp::new(5);
            black_box(holme_kim(5_000, 10, 0.6, &mut rng).unwrap())
        })
    });
    group.bench_function("facebook_stand_in_4039", |bench| {
        bench.iter(|| black_box(Dataset::Facebook.generate_with_nodes(4_039, 6)))
    });
    group.finish();
}

fn bench_randomized_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized_response");
    let n = 4_039;
    let truth = BitSet::from_indices(n, (0..n).step_by(90));
    for epsilon in [1.0f64, 4.0] {
        let rr = RandomizedResponse::new(epsilon / 2.0).unwrap();
        group.bench_with_input(
            BenchmarkId::new("perturb_bitvector_4039", format!("eps{epsilon}")),
            &epsilon,
            |bench, _| {
                let mut rng = Xoshiro256pp::new(7);
                bench.iter(|| black_box(rr.perturb_bitset(&truth, Some(0), &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bitset_kernels,
    bench_graph_construction,
    bench_triangle_counting,
    bench_clustering,
    bench_generators,
    bench_randomized_response
);
criterion_main!(benches);
