//! Defense performance: Apriori mining over uploaded bit vectors and the
//! two detectors applied to a poisoned population.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_graph::datasets::Dataset;
use ldp_graph::{BitSet, Xoshiro256pp};
use ldp_protocols::LfGdpr;
use poison_core::{
    craft_reports, AttackStrategy, AttackerKnowledge, MgaOptions, TargetMetric, TargetSelection,
    ThreatModel,
};
use poison_defense::apriori::apriori;
use poison_defense::{Defense, DegreeConsistencyDefense, FrequentItemsetDefense};

fn poisoned_reports(nodes: usize) -> (Vec<ldp_protocols::AdjacencyReport>, LfGdpr) {
    let graph = Dataset::Facebook.generate_with_nodes(nodes, 41);
    let protocol = LfGdpr::new(4.0).unwrap();
    let mut rng = Xoshiro256pp::new(42);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    let knowledge =
        AttackerKnowledge::derive(&protocol, threat.population(), graph.average_degree());
    let extended = graph.with_isolated_nodes(threat.m_fake);
    let base = Xoshiro256pp::new(43);
    let mut reports = protocol.collect_honest(&extended, &base);
    let mut attack_rng = Xoshiro256pp::new(44);
    let crafted = craft_reports(
        AttackStrategy::Mga,
        TargetMetric::DegreeCentrality,
        &protocol,
        &threat,
        &knowledge,
        MgaOptions::default(),
        &mut attack_rng,
    );
    for (offset, report) in crafted.into_iter().enumerate() {
        reports[threat.n_genuine + offset] = report;
    }
    (reports, protocol)
}

fn bench_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori");
    group.sample_size(10);
    let (reports, _) = poisoned_reports(1_000);
    let transactions: Vec<BitSet> = reports.iter().map(|r| r.bits.clone()).collect();
    group.bench_function("pairs_1050_transactions", |bench| {
        bench.iter(|| black_box(apriori(&transactions, 60, 2)))
    });
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    let (reports, protocol) = poisoned_reports(1_000);
    let detect1 = FrequentItemsetDefense::new(100);
    group.bench_function("detect1_1050_users", |bench| {
        bench.iter(|| {
            let mut rng = Xoshiro256pp::new(45);
            black_box(detect1.filter_reports(&reports, &protocol, &mut rng))
        })
    });
    let detect2 = DegreeConsistencyDefense::default();
    group.bench_function("detect2_1050_users", |bench| {
        bench.iter(|| {
            let mut rng = Xoshiro256pp::new(46);
            black_box(detect2.filter_reports(&reports, &protocol, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_apriori, bench_detectors);
criterion_main!(benches);
