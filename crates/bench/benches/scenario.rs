//! Scenario-engine overhead: the unified builder versus a hand-inlined
//! replica of the pre-refactor pipeline (collect → aggregate → craft →
//! swap tail → aggregate → estimate). The engine's cost on top of the
//! protocol work — trait dispatch, report-enum wrapping, adapters — must
//! stay in the noise (`scenario_smoke` pins the same comparison in CI).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::protocol::STREAM_ATTACK;
use ldp_protocols::{LdpGen, LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    craft_reports, AttackOutcome, AttackStrategy, AttackerKnowledge, Mga, MgaOptions, TargetMetric,
    TargetSelection, ThreatModel,
};

fn setup(nodes: usize) -> (ldp_graph::CsrGraph, LfGdpr, ThreatModel) {
    let graph = Dataset::Facebook.generate_with_nodes(nodes, 21);
    let protocol = LfGdpr::new(4.0).unwrap();
    let mut rng = Xoshiro256pp::new(22);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    (graph, protocol, threat)
}

/// The pre-refactor exact pipeline, inlined: what `run_lfgdpr_attack` did
/// before it became a wrapper over the engine.
pub fn manual_exact_degree(
    graph: &ldp_graph::CsrGraph,
    protocol: &LfGdpr,
    threat: &ThreatModel,
    seed: u64,
) -> AttackOutcome {
    let extended = graph.with_isolated_nodes(threat.m_fake);
    let base = Xoshiro256pp::new(seed);
    let mut reports = protocol.collect_honest(&extended, &base);
    let view_before = protocol.aggregate(&reports);
    let before: Vec<f64> = threat
        .targets
        .iter()
        .map(|&t| view_before.degree_centrality(t))
        .collect();
    let knowledge =
        AttackerKnowledge::derive(protocol, threat.population(), graph.average_degree());
    let mut attack_rng = base.derive(STREAM_ATTACK);
    let crafted = craft_reports(
        AttackStrategy::Mga,
        TargetMetric::DegreeCentrality,
        protocol,
        threat,
        &knowledge,
        MgaOptions::default(),
        &mut attack_rng,
    );
    for (offset, report) in crafted.into_iter().enumerate() {
        reports[threat.n_genuine + offset] = report;
    }
    let view_after = protocol.aggregate(&reports);
    let after: Vec<f64> = threat
        .targets
        .iter()
        .map(|&t| view_after.degree_centrality(t))
        .collect();
    AttackOutcome::new(before, after)
}

fn engine_exact_degree(
    graph: &ldp_graph::CsrGraph,
    protocol: &LfGdpr,
    threat: &ThreatModel,
    seed: u64,
) -> AttackOutcome {
    Scenario::on(*protocol)
        .attack(Mga::default())
        .metric(Metric::Degree)
        .threat(threat.clone())
        .exact()
        .seed(seed)
        .run(graph)
        .unwrap()
        .into_single_outcome()
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine");
    group.sample_size(10);
    let (graph, protocol, threat) = setup(500);
    // Sanity: the two paths are bit-identical before they are compared on
    // time.
    let a = manual_exact_degree(&graph, &protocol, &threat, 41);
    let b = engine_exact_degree(&graph, &protocol, &threat, 41);
    assert_eq!(a.before, b.before);
    assert_eq!(a.after, b.after);

    group.bench_function("manual_exact_degree_500", |bench| {
        bench.iter(|| black_box(manual_exact_degree(&graph, &protocol, &threat, 41)))
    });
    group.bench_function("builder_exact_degree_500", |bench| {
        bench.iter(|| black_box(engine_exact_degree(&graph, &protocol, &threat, 41)))
    });
    group.bench_function("builder_sampled_degree_500", |bench| {
        bench.iter(|| {
            black_box(
                Scenario::on(protocol)
                    .attack(Mga::default())
                    .metric(Metric::Degree)
                    .threat(threat.clone())
                    .sampled()
                    .seed(43)
                    .run(&graph)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_ldpgen_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_ldpgen");
    group.sample_size(10);
    let graph = Dataset::Facebook.generate_with_nodes(300, 23);
    let protocol = LdpGen::with_defaults(4.0).unwrap();
    let mut rng = Xoshiro256pp::new(24);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    group.bench_function("builder_clustering_300", |bench| {
        bench.iter(|| {
            black_box(
                Scenario::on(protocol)
                    .attack(Mga::default())
                    .metric(Metric::Clustering)
                    .threat(threat.clone())
                    .seed(45)
                    .run(&graph)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_overhead, bench_ldpgen_scenarios);
criterion_main!(benches);
