//! Protocol performance: LF-GDPR collection/aggregation/estimation and the
//! LDPGen pipeline, at the population sizes the experiments use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::lfgdpr::{estimate_clustering_at, estimate_modularity};
use ldp_protocols::{LdpGen, LfGdpr};

fn bench_lfgdpr_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfgdpr_collect_honest");
    group.sample_size(10);
    for nodes in [1_000usize, 2_000] {
        let graph = Dataset::Facebook.generate_with_nodes(nodes, 11);
        let protocol = LfGdpr::new(4.0).unwrap();
        let base = Xoshiro256pp::new(1);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |bench, _| {
            bench.iter(|| black_box(protocol.collect_honest(&graph, &base)))
        });
    }
    group.finish();
}

fn bench_lfgdpr_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfgdpr_aggregate");
    group.sample_size(10);
    let graph = Dataset::Facebook.generate_with_nodes(2_000, 12);
    let protocol = LfGdpr::new(4.0).unwrap();
    let base = Xoshiro256pp::new(2);
    let reports = protocol.collect_honest(&graph, &base);
    group.bench_function("2000_users", |bench| {
        bench.iter(|| black_box(protocol.aggregate(&reports)))
    });
    group.finish();
}

fn bench_lfgdpr_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("lfgdpr_estimate");
    group.sample_size(10);
    let nodes = 2_000;
    let graph = Dataset::Facebook.generate_with_nodes(nodes, 13);
    let protocol = LfGdpr::new(4.0).unwrap();
    let base = Xoshiro256pp::new(3);
    let view = protocol.aggregate(&protocol.collect_honest(&graph, &base));
    let targets: Vec<usize> = (0..100).map(|i| i * 17 % nodes).collect();
    group.bench_function("clustering_at_100_targets", |bench| {
        bench.iter(|| black_box(estimate_clustering_at(&view, &targets)))
    });
    let partition = Dataset::Facebook.ground_truth_partition(nodes);
    group.bench_function("modularity", |bench| {
        bench.iter(|| black_box(estimate_modularity(&view, &partition)))
    });
    group.finish();
}

fn bench_ldpgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("ldpgen");
    group.sample_size(10);
    let graph = Dataset::Facebook.generate_with_nodes(1_000, 14);
    let protocol = LdpGen::with_defaults(4.0).unwrap();
    let base = Xoshiro256pp::new(4);
    group.bench_function("end_to_end_1000", |bench| {
        bench.iter(|| black_box(protocol.run(&graph, &base)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lfgdpr_collect,
    bench_lfgdpr_aggregate,
    bench_lfgdpr_estimators,
    bench_ldpgen
);
criterion_main!(benches);
