//! Attack performance: report crafting per strategy, the exact evaluation
//! pipeline, and the analytic-sampling pipeline at Gplus-like scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::LfGdpr;
use ldp_protocols::Metric;
use poison_core::scenario::Scenario;
use poison_core::{
    attack_for, craft_reports, AttackStrategy, AttackerKnowledge, MgaOptions, TargetMetric,
    TargetSelection, ThreatModel,
};

fn setup(nodes: usize) -> (ldp_graph::CsrGraph, LfGdpr, ThreatModel, AttackerKnowledge) {
    let graph = Dataset::Facebook.generate_with_nodes(nodes, 21);
    let protocol = LfGdpr::new(4.0).unwrap();
    let mut rng = Xoshiro256pp::new(22);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    let knowledge =
        AttackerKnowledge::derive(&protocol, threat.population(), graph.average_degree());
    (graph, protocol, threat, knowledge)
}

fn bench_crafting(c: &mut Criterion) {
    let mut group = c.benchmark_group("craft_reports");
    let (_, protocol, threat, knowledge) = setup(2_000);
    for strategy in AttackStrategy::ALL {
        for metric in [
            TargetMetric::DegreeCentrality,
            TargetMetric::ClusteringCoefficient,
        ] {
            let label = format!("{}_{:?}", strategy.name(), metric);
            group.bench_with_input(
                BenchmarkId::from_parameter(label),
                &strategy,
                |bench, &s| {
                    let mut rng = Xoshiro256pp::new(23);
                    bench.iter(|| {
                        black_box(craft_reports(
                            s,
                            metric,
                            &protocol,
                            &threat,
                            &knowledge,
                            MgaOptions::default(),
                            &mut rng,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_exact_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_pipeline_1000");
    group.sample_size(10);
    let (graph, protocol, threat, _) = setup(1_000);
    for strategy in AttackStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("degree", strategy.name()),
            &strategy,
            |bench, &s| {
                bench.iter(|| {
                    black_box(
                        Scenario::on(protocol)
                            .attack(attack_for(s, MgaOptions::default()))
                            .metric(Metric::Degree)
                            .threat(threat.clone())
                            .exact()
                            .seed(31)
                            .run(&graph)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.bench_function("clustering_MGA", |bench| {
        bench.iter(|| {
            black_box(
                Scenario::on(protocol)
                    .attack(attack_for(AttackStrategy::Mga, MgaOptions::default()))
                    .metric(Metric::Clustering)
                    .threat(threat.clone())
                    .exact()
                    .seed(32)
                    .run(&graph)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_sampled_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampled_pipeline");
    group.sample_size(10);
    let graph = Dataset::Gplus.generate_with_nodes(20_000, 24);
    let protocol = LfGdpr::new(4.0).unwrap();
    let mut rng = Xoshiro256pp::new(25);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    group.bench_function("gplus_20000_MGA", |bench| {
        bench.iter(|| {
            black_box(
                Scenario::on(protocol)
                    .attack(attack_for(AttackStrategy::Mga, MgaOptions::default()))
                    .metric(Metric::Degree)
                    .threat(threat.clone())
                    .sampled()
                    .seed(33)
                    .run(&graph)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crafting,
    bench_exact_pipeline,
    bench_sampled_pipeline
);
criterion_main!(benches);
