//! One bench per paper table/figure: each target times the harness that
//! regenerates the corresponding artifact, at a reduced (smoke) scale so
//! `cargo bench` completes in minutes. The full-scale artifacts come from
//! the `poison-experiments` binaries (`cargo run -p poison-experiments
//! --bin fig6`, …); these benches guarantee every regeneration path is
//! exercised and report its cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use poison_experiments as px;
use px::ExperimentConfig;

fn smoke() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.1,
        trials: 1,
        seed: 99,
    }
}

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    let cfg = smoke();
    group.bench_function("table2", |b| b.iter(|| black_box(px::table2::run(&cfg))));
    group.bench_function("table3", |b| {
        b.iter(|| black_box(px::table3::to_markdown()))
    });
    group.finish();
}

fn bench_attack_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_attack");
    group.sample_size(10);
    let cfg = smoke();
    group.bench_function("fig6_point", |b| {
        b.iter(|| black_box(px::fig6::run_with_grid(&cfg, &[4.0], None)))
    });
    group.bench_function("fig7_point", |b| {
        b.iter(|| black_box(px::fig7::run_with_grid(&cfg, &[0.05], None)))
    });
    group.bench_function("fig8_point", |b| {
        b.iter(|| black_box(px::fig8::run_with_grid(&cfg, &[0.05], None)))
    });
    group.bench_function("fig9_point", |b| {
        b.iter(|| black_box(px::fig9::run_with_grid(&cfg, &[4.0], None)))
    });
    group.bench_function("fig10_point", |b| {
        b.iter(|| black_box(px::fig10::run_with_grid(&cfg, &[0.05], None)))
    });
    group.bench_function("fig11_point", |b| {
        b.iter(|| black_box(px::fig11::run_with_grid(&cfg, &[0.05], None)))
    });
    group.finish();
}

fn bench_defense_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_defense");
    group.sample_size(10);
    let cfg = smoke();
    group.bench_function("fig12a_point", |b| {
        b.iter(|| black_box(px::fig12::run_panel_a(&cfg, &[100])))
    });
    group.bench_function("fig12b_point", |b| {
        b.iter(|| black_box(px::fig12::run_panel_b(&cfg, &[0.05])))
    });
    group.bench_function("fig13a_point", |b| {
        b.iter(|| black_box(px::fig13::run_panel_a(&cfg, &[100])))
    });
    group.bench_function("fig13b_point", |b| {
        b.iter(|| black_box(px::fig13::run_panel_b(&cfg, &[0.05])))
    });
    group.finish();
}

fn bench_protocol_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_protocols");
    group.sample_size(10);
    let cfg = smoke();
    group.bench_function("fig14a_point", |b| {
        b.iter(|| black_box(px::fig14::run_panel_a(&cfg, &[4.0])))
    });
    group.bench_function("fig14b_point", |b| {
        b.iter(|| black_box(px::fig14::run_panel_b(&cfg, &[4.0])))
    });
    group.bench_function("fig15a_point", |b| {
        b.iter(|| black_box(px::fig15::run_panel_a(&cfg, &[4.0])))
    });
    group.bench_function("fig15b_point", |b| {
        b.iter(|| black_box(px::fig15::run_panel_b(&cfg, &[4.0])))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_attack_figures,
    bench_defense_figures,
    bench_protocol_figures
);
criterion_main!(benches);
