//! Report-aggregation throughput: one-shot `from_reports` versus the
//! streaming engine at the population sizes the scaling roadmap targets.
//!
//! Reports are synthesized at the word level (≈12.5% density, the regime a
//! perturbed graph lives in) so the bench isolates ingestion cost from
//! randomized-response cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_mechanisms::RandomizedResponse;
use ldp_protocols::{PerturbedView, StreamingAggregator};
use poison_bench::synthetic_reports;

fn rr() -> RandomizedResponse {
    RandomizedResponse::from_keep_probability(0.9).unwrap()
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for nodes in [1_000usize, 5_000, 10_000] {
        let reports = synthetic_reports(nodes, 0xBE57 + nodes as u64);
        group.bench_with_input(BenchmarkId::new("oneshot", nodes), &nodes, |bench, _| {
            bench.iter(|| black_box(PerturbedView::from_reports(&reports, rr())))
        });
        group.bench_with_input(
            BenchmarkId::new("streamed_512", nodes),
            &nodes,
            |bench, &n| {
                bench.iter(|| {
                    let mut agg = StreamingAggregator::new(n, rr());
                    for chunk in reports.chunks(512) {
                        agg.ingest_batch(chunk);
                    }
                    black_box(agg.finalize())
                })
            },
        );
    }
    group.finish();
}

/// The clustering-estimation kernel over a finalized view: per-node
/// triangle counts on the dense matrix. The prefix-intersection rewrite
/// of `BitMatrix::triangles_at` (count each triangle once via the word
/// prefix below `v`, mirroring the ingest fold's `iter_ones_below`
/// bound) halves the word traffic; this group records the speedup.
fn bench_triangles(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangles");
    group.sample_size(10);
    for nodes in [1_000usize, 4_000] {
        let reports = synthetic_reports(nodes, 0x7A1 + nodes as u64);
        let view = PerturbedView::from_reports(&reports, rr());
        group.bench_with_input(
            BenchmarkId::new("triangles_at_all", nodes),
            &nodes,
            |bench, &n| {
                bench.iter(|| {
                    let matrix = view.matrix();
                    black_box((0..n).map(|u| matrix.triangles_at(u)).sum::<u64>())
                })
            },
        );
        // The pre-PR-5 formulation (full-row intersection per neighbor,
        // halved at the end), kept as the baseline the kernel's speedup
        // is recorded against.
        group.bench_with_input(
            BenchmarkId::new("full_row_baseline", nodes),
            &nodes,
            |bench, &n| {
                bench.iter(|| {
                    let matrix = view.matrix();
                    let total: u64 = (0..n)
                        .map(|u| {
                            matrix
                                .row_indices(u)
                                .into_iter()
                                .map(|v| matrix.common_neighbors(u, v) as u64)
                                .sum::<u64>()
                                / 2
                        })
                        .sum();
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_triangles);
criterion_main!(benches);
