//! Shared harness of the collection-service benchmarks: loopback daemon
//! setup, honest + attack-crafted report replay through the
//! [`poison_core::Attack`] trait — over one batched connection or over
//! `C` concurrent sessions — throughput accounting, and the
//! `BENCH_collector.json` record. Used by the `collector_smoke` (CI) and
//! `collector_loadgen` (operator CLI) binaries.

use ldp_collector::{
    CollectorClient, CollectorConfig, CollectorError, CollectorServer, FsyncPolicy, RoundChannel,
    ServeScenario,
};
use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_obs::{Sample, SampleValue};
use ldp_protocols::wire;
use ldp_protocols::{AdjacencyReport, CraftContext, LfGdpr, Metric, PerturbedView};
use poison_core::scenario::{Scenario, ScenarioBuilder, ScenarioReport};
use poison_core::{
    Attack, AttackerKnowledge, Mga, Rna, Rva, TargetMetric, TargetSelection, ThreatModel,
};
use poison_defense::DegreeConsistencyDefense;
use rand::{Rng, RngCore};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Attack used for the crafted share of a replayed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadAttack {
    /// No fake tail: every report honest.
    None,
    /// Random value attack.
    Rva,
    /// Random neighbor attack.
    Rna,
    /// Maximal gain attack.
    Mga,
}

impl LoadAttack {
    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" => Some(LoadAttack::None),
            "rva" => Some(LoadAttack::Rva),
            "rna" => Some(LoadAttack::Rna),
            "mga" => Some(LoadAttack::Mga),
            _ => None,
        }
    }

    fn as_attack(self) -> Option<Box<dyn Attack>> {
        match self {
            LoadAttack::None => None,
            LoadAttack::Rva => Some(Box::new(Rva)),
            LoadAttack::Rna => Some(Box::new(Rna)),
            LoadAttack::Mga => Some(Box::new(Mga::default())),
        }
    }
}

/// Spawns a loopback daemon sized for the benchmarks.
///
/// # Errors
/// Bind failures.
pub fn spawn_daemon(
    shards: usize,
) -> Result<
    (
        SocketAddr,
        std::thread::JoinHandle<Result<(), CollectorError>>,
    ),
    CollectorError,
> {
    spawn_daemon_with(shards, true)
}

/// [`spawn_daemon`] with the metrics registry switched on or off.
///
/// `metrics: false` leaves every handle constructed but turns each
/// hot-path tick into a single predictable dead branch — the baseline
/// leg of the overhead measurement.
///
/// # Errors
/// Bind failures.
pub fn spawn_daemon_with(
    shards: usize,
    metrics: bool,
) -> Result<
    (
        SocketAddr,
        std::thread::JoinHandle<Result<(), CollectorError>>,
    ),
    CollectorError,
> {
    // Sized for R-round sweeps (16 simultaneous rounds, each with its
    // own sessions): admission limits themselves are exercised by the
    // collector's multitenant/chaos suites, not the bench harness.
    CollectorServer::spawn(CollectorConfig {
        shards,
        max_sessions: 64,
        max_rounds_per_tenant: 64,
        metrics,
        ..CollectorConfig::default()
    })
}

/// Sends the daemon at `addr` a shutdown and joins its thread.
pub fn shutdown_daemon(
    addr: SocketAddr,
    handle: std::thread::JoinHandle<Result<(), CollectorError>>,
) {
    if let Ok(mut client) = CollectorClient::connect(addr) {
        let _ = client.shutdown();
    }
    let _ = handle.join();
}

/// Result of the 10k-user equivalence smoke.
#[derive(Debug)]
pub struct EquivalenceResult {
    /// Users in the round.
    pub users: usize,
    /// Wall-clock of the in-process evaluation.
    pub in_process: Duration,
    /// Wall-clock of the same evaluation with every fold over TCP.
    pub wire: Duration,
    /// Mean gain (identical on both paths by assertion).
    pub mean_gain: f64,
}

/// Runs LF-GDPR + MGA + Detect2 at `users` genuine users once in process
/// and once over a loopback daemon, asserts the two `ScenarioReport`s are
/// bit-identical, and returns the timings.
///
/// # Panics
/// Panics if the two paths diverge in any per-target estimate, flag
/// count, or gain bit — that is the assertion CI runs.
///
/// # Errors
/// Daemon/bind/transport failures.
pub fn run_equivalence_smoke(users: usize, seed: u64) -> Result<EquivalenceResult, CollectorError> {
    let graph = Dataset::Facebook.generate_with_nodes(users, 42);
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    let mut rng = Xoshiro256pp::new(9);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);

    fn build<'a>(b: ScenarioBuilder<'a>, threat: &ThreatModel, seed: u64) -> ScenarioBuilder<'a> {
        b.attack(Mga::default())
            .metric(Metric::Degree)
            .defend(DegreeConsistencyDefense::default())
            .threat(threat.clone())
            .exact()
            .seed(seed)
    }

    let start = Instant::now();
    let in_process = build(Scenario::on(protocol), &threat, seed)
        .run(&graph)
        .expect("in-process run");
    let in_process_wall = start.elapsed();

    let (addr, handle) = spawn_daemon(8)?;
    let start = Instant::now();
    let wired = build(Scenario::on(protocol).serve(addr)?, &threat, seed)
        .run(&graph)
        .expect("wire run");
    let wire_wall = start.elapsed();
    shutdown_daemon(addr, handle);

    assert_reports_bit_identical(&in_process, &wired);
    Ok(EquivalenceResult {
        users,
        in_process: in_process_wall,
        wire: wire_wall,
        mean_gain: in_process.mean_gain(),
    })
}

/// Panics unless the two reports agree to the bit on every estimate and
/// verdict.
pub fn assert_reports_bit_identical(a: &ScenarioReport, b: &ScenarioReport) {
    assert_eq!(a.trials.len(), b.trials.len(), "trial counts differ");
    for (x, y) in a.trials.iter().zip(&b.trials) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(
            x.outcome.before, y.outcome.before,
            "before estimates differ"
        );
        assert_eq!(x.outcome.after, y.outcome.after, "after estimates differ");
        assert_eq!(x.flagged_fake, y.flagged_fake, "defense verdicts differ");
        assert_eq!(
            x.flagged_genuine, y.flagged_genuine,
            "defense verdicts differ"
        );
    }
    assert_eq!(
        a.mean_gain().to_bits(),
        b.mean_gain().to_bits(),
        "gains differ"
    );
}

/// Result of one replayed round.
#[derive(Debug)]
pub struct ThroughputResult {
    /// Reports streamed in the round (honest + crafted).
    pub reports: u64,
    /// Crafted (fake-tail) share of those reports.
    pub crafted: u64,
    /// Wall-clock from round open to finalize reply.
    pub wall: Duration,
    /// `reports / wall`.
    pub reports_per_sec: f64,
}

/// Crafts the fake tail of a degree-vector round through the [`Attack`]
/// trait: returns the genuine population, the crafted vectors, and the
/// RNG the honest stream continues from.
fn craft_degree_vector_tail(
    users: usize,
    groups: usize,
    attack: LoadAttack,
    beta: f64,
    seed: u64,
) -> (usize, Vec<Vec<f64>>, Xoshiro256pp) {
    // No attack ⇒ no fake tail: every report is honest.
    let m_fake = if attack == LoadAttack::None {
        0
    } else {
        ((users as f64 * beta) as usize).min(users / 2)
    };
    let n_genuine = users - m_fake;
    let targets: Vec<usize> = (0..n_genuine.min(64)).step_by(4).collect();
    let threat = ThreatModel::explicit(n_genuine, m_fake, targets);
    // The server's grouping: user i in group i % groups.
    let group_of: Vec<usize> = (0..users).map(|u| u % groups).collect();
    let knowledge = AttackerKnowledge::derive(&LfGdpr::new(4.0).expect("valid budget"), users, 8.0);

    let mut rng = Xoshiro256pp::new(seed);
    let crafted: Vec<Vec<f64>> = match attack.as_attack() {
        None => Vec::new(),
        Some(attack) => {
            let rng: &mut dyn RngCore = &mut rng;
            attack
                .craft(
                    CraftContext::DegreeVectors {
                        phase: 1,
                        groups: &group_of,
                        num_groups: groups,
                        noise_scale: 0.5,
                    },
                    TargetMetric::DegreeCentrality,
                    &threat,
                    &knowledge,
                    rng,
                )
                .into_iter()
                .map(|r| r.into_degree_vector().expect("degree-vector channel"))
                .collect()
        }
    };
    (n_genuine, crafted, rng)
}

/// Replays one **degree-vector round** of `users` reports — honest
/// Laplace-style vectors plus a `beta` fake tail crafted through the
/// [`Attack`] trait — at up to `rate` reports/sec (`None` = as fast as the
/// wire takes them), over the batched `REPORT_BATCH` send path. This is
/// the million-users-per-round regime: the daemon's aggregate stays
/// `O(shards·groups)`.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if the daemon's close summary shows any rejected report (the
/// replay is well-formed by construction).
#[allow(clippy::too_many_arguments)] // one knob per loadgen CLI flag
pub fn run_degree_vector_round(
    client: &mut CollectorClient,
    round_id: u64,
    users: usize,
    groups: usize,
    attack: LoadAttack,
    beta: f64,
    rate: Option<u64>,
    seed: u64,
) -> Result<ThroughputResult, CollectorError> {
    let (n_genuine, crafted, mut rng) = craft_degree_vector_tail(users, groups, attack, beta, seed);
    let crafted_count = crafted.len() as u64;

    let start = Instant::now();
    client.open_round(
        round_id,
        RoundChannel::DegreeVector {
            population: users,
            groups,
        },
        None,
    )?;
    let mut pacer = Pacer::new(rate);
    let mut vector = vec![0.0f64; groups];
    for id in 0..n_genuine as u64 {
        for x in &mut vector {
            *x = rng.gen_range(0.0..4.0);
        }
        // Borrowed, batched send: no clone per report, one frame per
        // DEFAULT_BATCH_REPORTS on the hot path.
        client.queue_degree_vector(id, &vector)?;
        pacer.tick(client)?;
    }
    for (offset, v) in crafted.iter().enumerate() {
        client.queue_degree_vector((n_genuine + offset) as u64, v)?;
        pacer.tick(client)?;
    }
    let summary = client.close_round(round_id)?;
    let out = client.finalize_degree_vector(round_id)?;
    let wall = start.elapsed();
    assert_eq!(
        summary.counters.accepted, users as u64,
        "replay must be fully accepted: {:?}",
        summary.counters
    );
    assert_eq!(out.accepted, users as u64);
    Ok(ThroughputResult {
        reports: users as u64,
        crafted: crafted_count,
        wall,
        reports_per_sec: users as f64 / wall.as_secs_f64(),
    })
}

/// Assembles the full report stream of an adjacency round — honest
/// LF-GDPR reports with the fake tail spliced in through the [`Attack`]
/// trait — shared by the single-connection and concurrent replays.
pub fn prepare_adjacency_stream(
    users: usize,
    attack: LoadAttack,
    beta: f64,
    seed: u64,
) -> (LfGdpr, Vec<AdjacencyReport>, u64) {
    // No attack ⇒ no fake tail: every report is honest.
    let m_fake = if attack == LoadAttack::None {
        0
    } else {
        ((users as f64 * beta) as usize).min(users / 2).max(1)
    };
    let n_genuine = users - m_fake;
    let graph = Dataset::Facebook
        .generate_with_nodes(n_genuine, 42)
        .with_isolated_nodes(m_fake);
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    let base = Xoshiro256pp::new(seed);
    let mut reports = protocol.collect_honest(&graph, &base);

    let mut rng = base.derive(ldp_protocols::protocol::STREAM_ATTACK);
    let crafted_count = match attack.as_attack() {
        None => 0u64,
        Some(attack) => {
            let targets: Vec<usize> = (0..n_genuine.min(64)).step_by(4).collect();
            let threat = ThreatModel::explicit(n_genuine, m_fake, targets);
            let knowledge = AttackerKnowledge::derive(&protocol, users, graph.average_degree());
            let rng: &mut dyn RngCore = &mut rng;
            let crafted = attack.craft(
                CraftContext::Adjacency {
                    protocol: &protocol,
                },
                TargetMetric::DegreeCentrality,
                &threat,
                &knowledge,
                rng,
            );
            let count = crafted.len() as u64;
            for (offset, report) in crafted.into_iter().enumerate() {
                reports[n_genuine + offset] = report.into_adjacency().expect("adjacency channel");
            }
            count
        }
    };
    (protocol, reports, crafted_count)
}

/// Replays one **adjacency round**: the honest reports of a real LF-GDPR
/// collection over the dataset stand-in, with the fake tail's reports
/// crafted through the [`Attack`] trait, streamed (batched) and finalized
/// over the wire.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if any replayed report is rejected.
pub fn run_adjacency_round(
    client: &mut CollectorClient,
    round_id: u64,
    users: usize,
    attack: LoadAttack,
    beta: f64,
    rate: Option<u64>,
    seed: u64,
) -> Result<ThroughputResult, CollectorError> {
    let (protocol, reports, crafted_count) = prepare_adjacency_stream(users, attack, beta, seed);

    let start = Instant::now();
    client.open_round(
        round_id,
        RoundChannel::Adjacency {
            population: users,
            p_keep: protocol.p_keep(),
        },
        None,
    )?;
    let mut pacer = Pacer::new(rate);
    for (id, report) in reports.iter().enumerate() {
        // Borrowed, batched send: no BitSet clone per report, one frame
        // per DEFAULT_BATCH_REPORTS on the hot path.
        client.queue_adjacency_report(id as u64, report)?;
        pacer.tick(client)?;
    }
    let summary = client.close_round(round_id)?;
    let view = client.finalize_adjacency(round_id)?;
    let wall = start.elapsed();
    assert_eq!(
        summary.counters.accepted, users as u64,
        "replay must be fully accepted: {:?}",
        summary.counters
    );
    assert_eq!(view.num_users(), users);
    Ok(ThroughputResult {
        reports: users as u64,
        crafted: crafted_count,
        wall,
        reports_per_sec: users as f64 / wall.as_secs_f64(),
    })
}

/// Replays one degree-vector round over `connections` concurrent client
/// sessions: a coordinator session opens the round, `C` uploader threads
/// stream disjoint contiguous id slices through the batched send path
/// and end with a `SYNC` barrier, then the coordinator closes and
/// finalizes. `rate`, when set, is split evenly across the connections.
/// The aggregate-throughput workload of the concurrent ingest plane.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if the daemon's close summary shows any rejected report, or if
/// an uploader thread fails.
#[allow(clippy::too_many_arguments)] // one knob per loadgen CLI flag
pub fn run_degree_vector_round_concurrent(
    addr: SocketAddr,
    round_id: u64,
    users: usize,
    groups: usize,
    attack: LoadAttack,
    beta: f64,
    rate: Option<u64>,
    connections: usize,
    seed: u64,
) -> Result<ThroughputResult, CollectorError> {
    let connections = connections.max(1);
    let (n_genuine, crafted, _) = craft_degree_vector_tail(users, groups, attack, beta, seed);
    let crafted_count = crafted.len() as u64;

    let mut coordinator = CollectorClient::connect(addr)?;
    let start = Instant::now();
    coordinator.open_round(
        round_id,
        RoundChannel::DegreeVector {
            population: users,
            groups,
        },
        None,
    )?;
    let worker_rate = rate.map(|r| (r / connections as u64).max(1));
    std::thread::scope(|scope| -> Result<(), CollectorError> {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let crafted = &crafted;
                scope.spawn(move || -> Result<(), CollectorError> {
                    let mut client = CollectorClient::connect(addr)?;
                    client.set_round(round_id)?;
                    // Per-connection honest stream (throughput workload;
                    // totals are not compared across connection counts).
                    let mut rng = Xoshiro256pp::new(seed).derive(0xC0_u64 + c as u64);
                    let lo = users * c / connections;
                    let hi = users * (c + 1) / connections;
                    let mut pacer = Pacer::new(worker_rate);
                    let mut vector = vec![0.0f64; groups];
                    for id in lo..hi {
                        if id < n_genuine {
                            for x in &mut vector {
                                *x = rng.gen_range(0.0..4.0);
                            }
                            client.queue_degree_vector(id as u64, &vector)?;
                        } else {
                            client.queue_degree_vector(id as u64, &crafted[id - n_genuine])?;
                        }
                        pacer.tick(&mut client)?;
                    }
                    // Barrier: the ACK proves this session's reports are
                    // folded before the coordinator closes.
                    client.sync()
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("uploader thread")?;
        }
        Ok(())
    })?;
    let summary = coordinator.close_round(round_id)?;
    let out = coordinator.finalize_degree_vector(round_id)?;
    let wall = start.elapsed();
    assert_eq!(
        summary.counters.accepted, users as u64,
        "replay must be fully accepted: {:?}",
        summary.counters
    );
    assert_eq!(out.accepted, users as u64);
    Ok(ThroughputResult {
        reports: users as u64,
        crafted: crafted_count,
        wall,
        reports_per_sec: users as f64 / wall.as_secs_f64(),
    })
}

/// Replays one adjacency round over `connections` concurrent sessions —
/// the **same** report stream as the single-connection replay at this
/// seed — and returns the finalized view alongside the timings so the
/// caller can pin it bit-identical against the in-process aggregation
/// ([`assert_concurrent_adjacency_equivalence`] does exactly that).
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if any replayed report is rejected or an uploader fails.
pub fn run_adjacency_round_concurrent(
    addr: SocketAddr,
    round_id: u64,
    users: usize,
    attack: LoadAttack,
    beta: f64,
    connections: usize,
    seed: u64,
) -> Result<
    (
        ThroughputResult,
        PerturbedView,
        Vec<AdjacencyReport>,
        LfGdpr,
    ),
    CollectorError,
> {
    let connections = connections.max(1);
    let (protocol, reports, crafted_count) = prepare_adjacency_stream(users, attack, beta, seed);

    let mut coordinator = CollectorClient::connect(addr)?;
    let start = Instant::now();
    coordinator.open_round(
        round_id,
        RoundChannel::Adjacency {
            population: users,
            p_keep: protocol.p_keep(),
        },
        None,
    )?;
    std::thread::scope(|scope| -> Result<(), CollectorError> {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let reports = &reports;
                scope.spawn(move || -> Result<(), CollectorError> {
                    let mut client = CollectorClient::connect(addr)?;
                    client.set_round(round_id)?;
                    let lo = users * c / connections;
                    let hi = users * (c + 1) / connections;
                    for (id, report) in reports.iter().enumerate().take(hi).skip(lo) {
                        client.queue_adjacency_report(id as u64, report)?;
                    }
                    client.sync()
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("uploader thread")?;
        }
        Ok(())
    })?;
    let summary = coordinator.close_round(round_id)?;
    let view = coordinator.finalize_adjacency(round_id)?;
    let wall = start.elapsed();
    assert_eq!(
        summary.counters.accepted, users as u64,
        "replay must be fully accepted: {:?}",
        summary.counters
    );
    Ok((
        ThroughputResult {
            reports: users as u64,
            crafted: crafted_count,
            wall,
            reports_per_sec: users as f64 / wall.as_secs_f64(),
        },
        view,
        reports,
        protocol,
    ))
}

/// Runs [`run_adjacency_round_concurrent`] and asserts the view the
/// daemon finalized from `connections` racing sessions is **bit
/// identical** to aggregating the same reports in process — the
/// concurrent-ingest acceptance check CI runs.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if any matrix word, reported-degree bit, or perturbed degree
/// differs between the two paths.
pub fn assert_concurrent_adjacency_equivalence(
    addr: SocketAddr,
    round_id: u64,
    users: usize,
    attack: LoadAttack,
    beta: f64,
    connections: usize,
    seed: u64,
) -> Result<ThroughputResult, CollectorError> {
    let (result, view, reports, protocol) =
        run_adjacency_round_concurrent(addr, round_id, users, attack, beta, connections, seed)?;
    let reference = protocol.aggregate(&reports);
    assert_eq!(
        view.matrix(),
        reference.matrix(),
        "concurrent wire matrix diverged from in-process"
    );
    assert_eq!(view.reported_degrees(), reference.reported_degrees());
    for u in 0..users {
        assert_eq!(view.perturbed_degree(u), reference.perturbed_degree(u));
    }
    Ok(result)
}

/// Result of replaying `R` simultaneous rounds.
#[derive(Debug)]
pub struct MultiRoundResult {
    /// Rounds multiplexed at once.
    pub rounds: usize,
    /// Reports per round.
    pub users_per_round: usize,
    /// Total reports across all rounds.
    pub reports: u64,
    /// Wall-clock from the first open to the last finalize.
    pub wall: Duration,
    /// **Aggregate** reports/sec across all simultaneous rounds.
    pub reports_per_sec: f64,
}

/// Replays `rounds` **simultaneous degree-vector rounds** — one session
/// per round, each opened as its own tenant, all streaming at once so
/// the daemon multiplexes `R` live aggregates — and returns the
/// aggregate throughput. The headline workload of the round registry:
/// sessions on different rounds share no lock.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if any round's close summary shows a rejected report.
pub fn run_simultaneous_degree_vector_rounds(
    addr: SocketAddr,
    rounds: usize,
    users_per_round: usize,
    groups: usize,
    seed: u64,
) -> Result<MultiRoundResult, CollectorError> {
    let rounds = rounds.max(1);
    let start = Instant::now();
    std::thread::scope(|scope| -> Result<(), CollectorError> {
        let handles: Vec<_> = (0..rounds)
            .map(|r| {
                scope.spawn(move || -> Result<(), CollectorError> {
                    let round_id = r as u64 + 1;
                    let mut client = CollectorClient::connect(addr)?.with_tenant(r as u64);
                    client.open_round(
                        round_id,
                        RoundChannel::DegreeVector {
                            population: users_per_round,
                            groups,
                        },
                        None,
                    )?;
                    let mut rng = Xoshiro256pp::new(seed).derive(round_id);
                    let mut vector = vec![0.0f64; groups];
                    for id in 0..users_per_round as u64 {
                        for x in &mut vector {
                            *x = rng.gen_range(0.0..4.0);
                        }
                        client.queue_degree_vector(id, &vector)?;
                    }
                    let summary = client.close_round(round_id)?;
                    assert_eq!(
                        summary.counters.accepted, users_per_round as u64,
                        "round {round_id} replay must be fully accepted: {:?}",
                        summary.counters
                    );
                    let out = client.finalize_degree_vector(round_id)?;
                    assert_eq!(out.accepted, users_per_round as u64);
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("round thread")?;
        }
        Ok(())
    })?;
    let wall = start.elapsed();
    let reports = (rounds * users_per_round) as u64;
    Ok(MultiRoundResult {
        rounds,
        users_per_round,
        reports,
        wall,
        reports_per_sec: reports as f64 / wall.as_secs_f64(),
    })
}

/// Replays `rounds` simultaneous **adjacency rounds** — distinct report
/// streams, one session per round, racing on one daemon — and asserts
/// every finalized view is **bit-identical** to aggregating that round's
/// reports in process (equivalently: to running the rounds sequentially,
/// since the sequential daemon path is itself pinned bit-identical to
/// the in-process fold). The multi-round acceptance check CI runs.
///
/// # Errors
/// Transport failures and daemon refusals.
///
/// # Panics
/// Panics if any round's view differs from its in-process reference in
/// any matrix word or degree.
pub fn assert_simultaneous_adjacency_equivalence(
    addr: SocketAddr,
    rounds: usize,
    users_per_round: usize,
    seed: u64,
) -> Result<MultiRoundResult, CollectorError> {
    let rounds = rounds.max(1);
    let start = Instant::now();
    std::thread::scope(|scope| -> Result<(), CollectorError> {
        let handles: Vec<_> = (0..rounds)
            .map(|r| {
                scope.spawn(move || -> Result<(), CollectorError> {
                    let round_id = r as u64 + 1;
                    // A per-round stream: different seed, different noise.
                    let (protocol, reports, _) = prepare_adjacency_stream(
                        users_per_round,
                        LoadAttack::None,
                        0.0,
                        seed + r as u64,
                    );
                    let mut client = CollectorClient::connect(addr)?.with_tenant(r as u64);
                    client.open_round(
                        round_id,
                        RoundChannel::Adjacency {
                            population: users_per_round,
                            p_keep: protocol.p_keep(),
                        },
                        None,
                    )?;
                    for (id, report) in reports.iter().enumerate() {
                        client.queue_adjacency_report(id as u64, report)?;
                    }
                    let summary = client.close_round(round_id)?;
                    assert_eq!(summary.counters.accepted, users_per_round as u64);
                    let view = client.finalize_adjacency(round_id)?;
                    let reference = protocol.aggregate(&reports);
                    assert_eq!(
                        view.matrix(),
                        reference.matrix(),
                        "round {round_id} diverged under multiplexing"
                    );
                    assert_eq!(view.reported_degrees(), reference.reported_degrees());
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("round thread")?;
        }
        Ok(())
    })?;
    let wall = start.elapsed();
    let reports = (rounds * users_per_round) as u64;
    Ok(MultiRoundResult {
        rounds,
        users_per_round,
        reports,
        wall,
        reports_per_sec: reports as f64 / wall.as_secs_f64(),
    })
}

/// Paces a replay to a reports/sec target by sleeping at batch
/// boundaries (and flushing so the daemon sees a steady stream, not one
/// burst at close).
struct Pacer {
    rate: Option<u64>,
    sent: u64,
    started: Instant,
}

impl Pacer {
    const BATCH: u64 = 1024;

    fn new(rate: Option<u64>) -> Self {
        Pacer {
            rate,
            sent: 0,
            started: Instant::now(),
        }
    }

    fn tick(&mut self, client: &mut CollectorClient) -> Result<(), CollectorError> {
        self.sent += 1;
        if let Some(rate) = self.rate {
            if self.sent.is_multiple_of(Self::BATCH) {
                // Flush before sleeping so the daemon really receives a
                // steady stream rather than one burst at close.
                client.flush()?;
                let due = Duration::from_secs_f64(self.sent as f64 / rate as f64);
                let elapsed = self.started.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
        }
        Ok(())
    }
}

/// The named counter's value in a decoded `STATS` scrape; 0 when absent
/// (a daemon whose registry is inactive scrapes empty).
pub fn stat_counter(entries: &[wire::StatsEntry], name: &str) -> u64 {
    entries
        .iter()
        .find_map(|e| match e.value {
            wire::StatsValue::Counter(v) if e.name == name => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

/// The named gauge's value in a decoded `STATS` scrape; 0 when absent.
pub fn stat_gauge(entries: &[wire::StatsEntry], name: &str) -> u64 {
    entries
        .iter()
        .find_map(|e| match e.value {
            wire::StatsValue::Gauge(v) if e.name == name => Some(v),
            _ => None,
        })
        .unwrap_or(0)
}

/// Sum of the per-shard fold counters — the registry-side twin of the
/// accepted count across every round the daemon ever served.
pub fn folded_total(entries: &[wire::StatsEntry]) -> u64 {
    entries
        .iter()
        .filter(|e| e.name.starts_with("ingest_reports_folded_shard_"))
        .map(|e| match e.value {
            wire::StatsValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

/// Decoded `STATS_REPLY` entries as [`ldp_obs`] samples, so
/// [`ldp_obs::render_samples`] can produce the same Prometheus-style
/// text exposition on the scraping side as the daemon renders locally.
pub fn samples_from_wire(entries: &[wire::StatsEntry]) -> Vec<Sample> {
    entries
        .iter()
        .map(|e| Sample {
            name: e.name.clone(),
            value: match &e.value {
                wire::StatsValue::Counter(v) => SampleValue::Counter(*v),
                wire::StatsValue::Gauge(v) => SampleValue::Gauge(*v),
                wire::StatsValue::Histogram { sum, buckets } => SampleValue::Histogram {
                    sum: *sum,
                    buckets: buckets.clone(),
                },
            },
        })
        .collect()
}

/// Result of the instrumented-vs-baseline overhead measurement.
#[derive(Debug)]
pub struct MetricsOverhead {
    /// Reports per measured round.
    pub users: usize,
    /// A/B pairs run (best wall of each side is kept).
    pub runs: usize,
    /// Best wall-clock with the registry live.
    pub instrumented_wall: Duration,
    /// Best wall-clock with the registry inactive.
    pub baseline_wall: Duration,
    /// `instrumented_wall / baseline_wall` — the number the ≤1.03
    /// budget in `BENCH_collector.json` is asserted on.
    pub ratio: f64,
}

/// Measures what the metrics registry costs on the headline workload:
/// replays the same honest degree-vector round on a fresh instrumented
/// daemon and on a fresh `metrics: false` daemon in interleaved A/B
/// pairs, and reports the ratio of the best walls (interleaving plus
/// best-of-N squeezes out scheduler drift, which on a shared CI box
/// dwarfs the few relaxed ticks per report being measured).
///
/// Pairs keep running — at least two, at most `max_runs` — until the
/// ratio lands at or under `target`, so a one-off scheduler stall on
/// the instrumented leg costs extra pairs instead of a flaked gate. A
/// real regression holds across retries: the pre-optimization probe
/// counter, at ~+9%, blew every pair it was measured under.
///
/// # Errors
/// Daemon/bind/transport failures.
///
/// # Panics
/// Panics if any replayed report is rejected.
pub fn run_metrics_overhead(
    users: usize,
    groups: usize,
    max_runs: usize,
    target: f64,
    seed: u64,
) -> Result<MetricsOverhead, CollectorError> {
    let max_runs = max_runs.max(2);
    let mut best = [Duration::MAX; 2];
    let mut runs = 0;
    for run in 0..max_runs {
        for (slot, metrics) in [(0usize, true), (1, false)] {
            let (addr, handle) = spawn_daemon_with(8, metrics)?;
            let mut client = CollectorClient::connect(addr)?;
            let result = run_degree_vector_round(
                &mut client,
                1,
                users,
                groups,
                LoadAttack::None,
                0.0,
                None,
                seed + run as u64,
            )?;
            drop(client);
            shutdown_daemon(addr, handle);
            best[slot] = best[slot].min(result.wall);
        }
        runs = run + 1;
        if runs >= 2 && best[0].as_secs_f64() <= target * best[1].as_secs_f64() {
            break;
        }
    }
    Ok(MetricsOverhead {
        users,
        runs,
        instrumented_wall: best[0],
        baseline_wall: best[1],
        ratio: best[0].as_secs_f64() / best[1].as_secs_f64(),
    })
}

/// Result of the live-scrape reconciliation round.
#[derive(Debug)]
pub struct LiveScrapeResult {
    /// The replayed round's timings.
    pub throughput: ThroughputResult,
    /// `STATS` scrapes answered while the round was still streaming.
    pub mid_scrapes: usize,
    /// Final sum of per-shard fold counters (== accepted by assertion).
    pub folded_total: u64,
}

/// Streams one degree-vector round of `users` reports on a **fresh**
/// daemon while a second session scrapes `STATS` concurrently, then
/// asserts the registry reconciles exactly with the round's close
/// `SUMMARY`: every mid-round scrape is a monotone count never
/// exceeding the population, and after close the sum of per-shard fold
/// counters equals the accepted count to the report — the acceptance
/// pin for scraping a live 2²⁰-report round.
///
/// # Errors
/// Daemon/bind/transport failures.
///
/// # Panics
/// Panics if any scrape overcounts, goes backwards, or the final
/// registry state disagrees with the summary.
pub fn assert_live_scrape_reconciles(
    users: usize,
    groups: usize,
    seed: u64,
) -> Result<LiveScrapeResult, CollectorError> {
    let (addr, handle) = spawn_daemon_with(8, true)?;
    let mut mid_scrapes = 0usize;
    let throughput = std::thread::scope(|scope| -> Result<ThroughputResult, CollectorError> {
        let uploader = scope.spawn(move || -> Result<ThroughputResult, CollectorError> {
            let mut client = CollectorClient::connect(addr)?;
            run_degree_vector_round(
                &mut client,
                1,
                users,
                groups,
                LoadAttack::None,
                0.0,
                None,
                seed,
            )
        });
        let mut scraper = CollectorClient::connect(addr)?;
        let mut last = 0u64;
        while !uploader.is_finished() {
            let entries = scraper.stats()?;
            let folded = folded_total(&entries);
            assert!(
                folded >= last,
                "fold counters went backwards: {folded} < {last}"
            );
            assert!(
                folded <= users as u64,
                "mid-round scrape overcounts: {folded} > {users}"
            );
            last = folded;
            mid_scrapes += 1;
            std::thread::sleep(Duration::from_millis(20));
        }
        uploader.join().expect("uploader thread")
    })?;
    // The replay asserted accepted == users at close; the registry's
    // twin must agree exactly, and the quiet fleet contributed nothing.
    let mut scraper = CollectorClient::connect(addr)?;
    let entries = scraper.stats()?;
    let folded = folded_total(&entries);
    assert_eq!(
        folded, throughput.reports,
        "fold counters diverged from the close summary"
    );
    assert_eq!(stat_counter(&entries, "stall_reaps"), 0);
    assert_eq!(stat_counter(&entries, "sessions_refused_cap"), 0);
    drop(scraper);
    shutdown_daemon(addr, handle);
    Ok(LiveScrapeResult {
        throughput,
        mid_scrapes,
        folded_total: folded,
    })
}

/// One fsync policy's leg of the durability-tax sweep.
#[derive(Debug)]
pub struct DurabilityTax {
    /// Operator spelling of the policy (`off`, `every:<bytes>`, `always`).
    pub policy: &'static str,
    /// The measured round.
    pub throughput: ThroughputResult,
    /// `reports_per_sec` relative to the journal-less baseline (1.0 =
    /// free, lower = the tax).
    pub ratio_vs_baseline: f64,
}

/// How many times [`run_durability_tax`] replays each leg, keeping the
/// fastest: single ~100 ms rounds swing ±25% on a shared VM, which would
/// drown the journal tax in scheduler noise.
const DURABILITY_REPS: usize = 3;

/// Measures the write-ahead journal's ingest tax: one honest
/// degree-vector round replayed over a single batched connection against
/// a journal-less daemon (the baseline) and against durable daemons at
/// each fsync policy, best of `DURABILITY_REPS` (3) runs per leg, journals
/// on a scratch directory that is removed afterwards. Every rep gets a
/// fresh daemon and a fresh journal directory, so no leg pays for a
/// predecessor's dirty pages.
///
/// # Errors
/// Daemon/bind/transport failures.
///
/// # Panics
/// Panics if any leg's close summary shows a rejected report (the replay
/// is well-formed by construction) or the scratch directory cannot be
/// created.
pub fn run_durability_tax(
    users: usize,
    groups: usize,
    seed: u64,
) -> Result<(ThroughputResult, Vec<DurabilityTax>), CollectorError> {
    let best_of =
        |policy: Option<FsyncPolicy>, tag: &str| -> Result<ThroughputResult, CollectorError> {
            let mut best: Option<ThroughputResult> = None;
            for rep in 0..DURABILITY_REPS {
                let dir = std::env::temp_dir()
                    .join(format!("ldp-bench-wal-{}-{tag}-{rep}", std::process::id()));
                let (addr, handle) = match policy {
                    None => spawn_daemon(8)?,
                    Some(policy) => {
                        let _ = std::fs::remove_dir_all(&dir);
                        CollectorServer::spawn_durable(
                            CollectorConfig {
                                shards: 8,
                                max_sessions: 64,
                                max_rounds_per_tenant: 64,
                                ..CollectorConfig::default()
                            },
                            &dir,
                            policy,
                        )?
                    }
                };
                let mut client = CollectorClient::connect(addr)?;
                let throughput = run_degree_vector_round(
                    &mut client,
                    90,
                    users,
                    groups,
                    LoadAttack::None,
                    0.0,
                    None,
                    seed,
                )?;
                drop(client);
                shutdown_daemon(addr, handle);
                let _ = std::fs::remove_dir_all(&dir);
                if best
                    .as_ref()
                    .is_none_or(|b| throughput.reports_per_sec > b.reports_per_sec)
                {
                    best = Some(throughput);
                }
            }
            Ok(best.expect("DURABILITY_REPS > 0"))
        };

    let baseline = best_of(None, "none")?;
    let policies: [(&'static str, FsyncPolicy); 3] = [
        ("off", FsyncPolicy::Off),
        ("every:1048576", FsyncPolicy::EveryBytes(1 << 20)),
        ("always", FsyncPolicy::Always),
    ];
    let mut taxes = Vec::new();
    for (name, policy) in policies {
        let throughput = best_of(Some(policy), &name.replace(':', "-"))?;
        taxes.push(DurabilityTax {
            policy: name,
            ratio_vs_baseline: throughput.reports_per_sec / baseline.reports_per_sec,
            throughput,
        });
    }
    Ok((baseline, taxes))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}
