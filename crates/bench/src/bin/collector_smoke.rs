//! Collection-service smoke benchmark, run in CI after the unit suites:
//!
//! 1. **Equivalence** — a loopback round with 10k users: LF-GDPR + MGA +
//!    Detect2 evaluated in process and with every fold over TCP, asserted
//!    bit-for-bit identical (estimates, defense verdicts, gain bits).
//! 2. **Round throughput** — one degree-vector round of 2²⁰ (≈1.05M)
//!    reports, honest + MGA-crafted via the `Attack` trait, plus one
//!    adjacency round at the Facebook stand-in's scale; reports/sec and
//!    peak RSS recorded.
//!
//! Results land in `BENCH_collector.json` for the perf trajectory.

use ldp_collector::CollectorClient;
use poison_bench::collector::{
    peak_rss_bytes, run_adjacency_round, run_degree_vector_round, run_equivalence_smoke,
    shutdown_daemon, spawn_daemon, LoadAttack,
};

const EQUIVALENCE_USERS: usize = 10_000;
const ROUND_USERS: usize = 1 << 20; // 1,048,576 reports in one round
const ROUND_GROUPS: usize = 8;
const ADJACENCY_USERS: usize = 4_039; // Facebook stand-in scale

fn main() {
    // 1. Wire == in-process, to the bit, at 10k users.
    let eq = run_equivalence_smoke(EQUIVALENCE_USERS, 2024).expect("equivalence smoke");
    eprintln!(
        "equivalence: {} users, in-process {:.1} ms, wire {:.1} ms, gain {:.4}",
        eq.users,
        eq.in_process.as_secs_f64() * 1e3,
        eq.wire.as_secs_f64() * 1e3,
        eq.mean_gain
    );

    // 2. One ≥1M-report degree-vector round and one Facebook-scale
    //    adjacency round, both honest + MGA-crafted.
    let (addr, handle) = spawn_daemon(8).expect("daemon");
    let mut client = CollectorClient::connect(addr).expect("connect");
    let degvec = run_degree_vector_round(
        &mut client,
        1,
        ROUND_USERS,
        ROUND_GROUPS,
        LoadAttack::Mga,
        0.01,
        None,
        7,
    )
    .expect("degree-vector round");
    assert!(
        degvec.reports >= 1_000_000,
        "the headline round must carry ≥1M reports"
    );
    let adjacency = run_adjacency_round(
        &mut client,
        2,
        ADJACENCY_USERS,
        LoadAttack::Mga,
        0.05,
        None,
        7,
    )
    .expect("adjacency round");
    drop(client);
    shutdown_daemon(addr, handle);

    let json = format!(
        "{{\n  \"bench\": \"collector\",\n  \"equivalence\": {{\n    \"users\": {},\n    \
         \"bit_identical\": true,\n    \"in_process_ms\": {:.1},\n    \"wire_ms\": {:.1}\n  }},\n  \
         \"degree_vector_round\": {{\n    \"users\": {},\n    \"groups\": {},\n    \
         \"crafted_reports\": {},\n    \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0}\n  }},\n  \
         \"adjacency_round\": {{\n    \"users\": {},\n    \"crafted_reports\": {},\n    \
         \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0}\n  }},\n  \
         \"peak_rss_bytes\": {}\n}}\n",
        eq.users,
        eq.in_process.as_secs_f64() * 1e3,
        eq.wire.as_secs_f64() * 1e3,
        degvec.reports,
        ROUND_GROUPS,
        degvec.crafted,
        degvec.wall.as_secs_f64(),
        degvec.reports_per_sec,
        adjacency.reports,
        adjacency.crafted,
        adjacency.wall.as_secs_f64(),
        adjacency.reports_per_sec,
        peak_rss_bytes(),
    );
    std::fs::write("BENCH_collector.json", &json).expect("write BENCH_collector.json");
    print!("{json}");
}
