//! Collection-service smoke benchmark, run in CI after the unit suites:
//!
//! 1. **Equivalence** — a loopback round with 10k users: LF-GDPR + MGA +
//!    Detect2 evaluated in process and with every fold over TCP (batched
//!    frames), asserted bit-for-bit identical (estimates, defense
//!    verdicts, gain bits).
//! 2. **Round throughput** — the 2²⁰ (≈1.05M)-report degree-vector round
//!    at 1 and at 4 concurrent uploader sessions (aggregate reports/s of
//!    the concurrent ingest plane), plus one adjacency round at the
//!    Facebook stand-in's scale; reports/sec and peak RSS recorded.
//! 3. **Concurrent bit-identity** — the Facebook-scale adjacency round
//!    streamed by 4 racing sessions finalizes bit-identical to the
//!    in-process aggregation of the same reports.
//! 4. **Multi-round sweep** — R ∈ {1, 4, 16} *simultaneous* rounds (one
//!    tenant/session per round, all streaming at once) with the
//!    aggregate reports/s across rounds recorded, plus 4 simultaneous
//!    adjacency rounds each asserted bit-identical to its single-round
//!    in-process reference.
//! 5. **Observability** — the same 2²⁰-report round replayed on an
//!    instrumented daemon and on a `metrics: false` daemon (interleaved
//!    A/B pairs, best wall each): the `metrics_overhead` ratio is
//!    recorded and asserted ≤ 1.03. Then one live 2²⁰-report round is
//!    scraped over `STATS` while streaming, and the registry is
//!    asserted to reconcile exactly with the round's close `SUMMARY`.
//!
//! Results land in `BENCH_collector.json` for the perf trajectory. The
//! multi-connection assertion is a *loose floor* (CI boxes may have one
//! core, where parallel sessions cannot beat the single-session CPU
//! bound); the recorded ratio is the trajectory signal.

use ldp_collector::CollectorClient;
use poison_bench::collector::{
    assert_concurrent_adjacency_equivalence, assert_live_scrape_reconciles,
    assert_simultaneous_adjacency_equivalence, peak_rss_bytes, run_adjacency_round,
    run_degree_vector_round, run_degree_vector_round_concurrent, run_durability_tax,
    run_equivalence_smoke, run_metrics_overhead, run_simultaneous_degree_vector_rounds,
    shutdown_daemon, spawn_daemon, LoadAttack,
};

const EQUIVALENCE_USERS: usize = 10_000;
const ROUND_USERS: usize = 1 << 20; // 1,048,576 reports in one round
const ROUND_GROUPS: usize = 8;
const ADJACENCY_USERS: usize = 4_039; // Facebook stand-in scale
const CONNECTIONS: usize = 4;
const MULTI_ROUND_USERS: usize = 1 << 16; // 65,536 reports per simultaneous round
const ROUND_SWEEP: [usize; 3] = [1, 4, 16];
const OVERHEAD_RUNS: usize = 8; // max A/B pairs; stops once within budget
const OVERHEAD_BUDGET: f64 = 1.03; // instrumented / baseline, hard ceiling
const DURABILITY_USERS: usize = 1 << 18; // 262,144 reports per fsync-policy leg

fn main() {
    // 1. Wire == in-process, to the bit, at 10k users.
    let eq = run_equivalence_smoke(EQUIVALENCE_USERS, 2024).expect("equivalence smoke");
    let wire_over_in_process = eq.wire.as_secs_f64() / eq.in_process.as_secs_f64();
    eprintln!(
        "equivalence: {} users, in-process {:.1} ms, wire {:.1} ms ({:.2}x), gain {:.4}",
        eq.users,
        eq.in_process.as_secs_f64() * 1e3,
        eq.wire.as_secs_f64() * 1e3,
        wire_over_in_process,
        eq.mean_gain
    );

    // 2. The ≥1M-report degree-vector round at 1 and 4 connections, and
    //    one Facebook-scale adjacency round, all honest + MGA-crafted.
    let (addr, handle) = spawn_daemon(8).expect("daemon");
    let mut client = CollectorClient::connect(addr).expect("connect");
    let degvec = run_degree_vector_round(
        &mut client,
        1,
        ROUND_USERS,
        ROUND_GROUPS,
        LoadAttack::Mga,
        0.01,
        None,
        7,
    )
    .expect("degree-vector round");
    assert!(
        degvec.reports >= 1_000_000,
        "the headline round must carry ≥1M reports"
    );
    let degvec_multi = run_degree_vector_round_concurrent(
        addr,
        2,
        ROUND_USERS,
        ROUND_GROUPS,
        LoadAttack::Mga,
        0.01,
        None,
        CONNECTIONS,
        7,
    )
    .expect("concurrent degree-vector round");
    let speedup = degvec_multi.reports_per_sec / degvec.reports_per_sec;
    eprintln!(
        "degree-vector: 1 conn {:.0} reports/s, {} conns {:.0} reports/s (x{:.2})",
        degvec.reports_per_sec, CONNECTIONS, degvec_multi.reports_per_sec, speedup
    );
    // Loose floor: concurrency must never *halve* aggregate ingest (a
    // single-core box caps the ratio near 1; multi-core should exceed 2).
    assert!(
        degvec_multi.reports_per_sec >= 0.5 * degvec.reports_per_sec,
        "aggregate throughput collapsed under concurrent sessions: \
         {:.0} vs {:.0} reports/s",
        degvec_multi.reports_per_sec,
        degvec.reports_per_sec
    );
    assert!(
        degvec_multi.reports_per_sec >= 250_000.0,
        "absolute aggregate floor: {:.0} reports/s",
        degvec_multi.reports_per_sec
    );

    let adjacency = run_adjacency_round(
        &mut client,
        3,
        ADJACENCY_USERS,
        LoadAttack::Mga,
        0.05,
        None,
        7,
    )
    .expect("adjacency round");

    // 3. Concurrent sessions racing the same adjacency stream finalize
    //    bit-identical to the in-process aggregation.
    let adjacency_multi = assert_concurrent_adjacency_equivalence(
        addr,
        4,
        ADJACENCY_USERS,
        LoadAttack::Mga,
        0.05,
        CONNECTIONS,
        7,
    )
    .expect("concurrent adjacency equivalence");
    eprintln!(
        "adjacency: 1 conn {:.0} reports/s, {} conns {:.0} reports/s, bit-identical",
        adjacency.reports_per_sec, CONNECTIONS, adjacency_multi.reports_per_sec
    );
    drop(client);
    shutdown_daemon(addr, handle);

    // 4. R simultaneous rounds on a fresh daemon: the aggregate ingest
    //    of the round registry, then the R=4 adjacency bit-identity pin.
    let (addr, handle) = spawn_daemon(8).expect("multi-round daemon");
    let mut sweep = Vec::new();
    for rounds in ROUND_SWEEP {
        let result =
            run_simultaneous_degree_vector_rounds(addr, rounds, MULTI_ROUND_USERS, ROUND_GROUPS, 7)
                .expect("simultaneous degree-vector rounds");
        eprintln!(
            "multi-round: {} simultaneous rounds x {} users in {:.3}s = {:.0} reports/s aggregate",
            result.rounds,
            result.users_per_round,
            result.wall.as_secs_f64(),
            result.reports_per_sec
        );
        sweep.push(result);
    }
    // Loose floor, like the multi-connection one: multiplexing rounds
    // must never halve aggregate ingest relative to one round at a time.
    assert!(
        sweep
            .iter()
            .all(|r| r.reports_per_sec >= 0.5 * sweep[0].reports_per_sec),
        "aggregate throughput collapsed under simultaneous rounds: {:?}",
        sweep
            .iter()
            .map(|r| (r.rounds, r.reports_per_sec as u64))
            .collect::<Vec<_>>()
    );
    let multi_adjacency = assert_simultaneous_adjacency_equivalence(addr, 4, ADJACENCY_USERS, 7)
        .expect("simultaneous adjacency equivalence");
    eprintln!(
        "multi-round adjacency: {} simultaneous rounds, each bit-identical, {:.0} reports/s aggregate",
        multi_adjacency.rounds, multi_adjacency.reports_per_sec
    );
    shutdown_daemon(addr, handle);

    // 5. Observability: the registry's per-report ticks stay inside the
    //    3% budget, and scraping a live 2²⁰-report round reconciles
    //    exactly with its close summary.
    let overhead =
        run_metrics_overhead(ROUND_USERS, ROUND_GROUPS, OVERHEAD_RUNS, OVERHEAD_BUDGET, 7)
            .expect("metrics overhead measurement");
    eprintln!(
        "metrics overhead: instrumented {:.3}s vs baseline {:.3}s (best of {}) = x{:.3}",
        overhead.instrumented_wall.as_secs_f64(),
        overhead.baseline_wall.as_secs_f64(),
        overhead.runs,
        overhead.ratio
    );
    assert!(
        overhead.ratio <= OVERHEAD_BUDGET,
        "metrics overhead x{:.3} blew the x{OVERHEAD_BUDGET} budget",
        overhead.ratio
    );
    let scrape = assert_live_scrape_reconciles(ROUND_USERS, ROUND_GROUPS, 7)
        .expect("live scrape reconciliation");
    eprintln!(
        "live scrape: {} mid-round scrapes, final fold counters == accepted == {}",
        scrape.mid_scrapes, scrape.folded_total
    );

    // 6. Durability: the write-ahead journal's ingest tax per fsync
    //    policy, against a journal-less baseline on the same round.
    let (wal_baseline, taxes) =
        run_durability_tax(DURABILITY_USERS, ROUND_GROUPS, 7).expect("durability tax");
    for tax in &taxes {
        eprintln!(
            "durability: fsync={} {:.0} reports/s (x{:.3} of no-journal {:.0})",
            tax.policy,
            tax.throughput.reports_per_sec,
            tax.ratio_vs_baseline,
            wal_baseline.reports_per_sec
        );
    }
    // Loose floor (CI boxes have wildly varying fsync latency): the
    // journal with fsync *off* must never halve ingest. The recorded
    // ratios are the trajectory signal.
    assert!(
        taxes[0].ratio_vs_baseline >= 0.5,
        "fsync=off journaling halved ingest: x{:.3}",
        taxes[0].ratio_vs_baseline
    );

    let durability_json: Vec<String> = taxes
        .iter()
        .map(|tax| {
            format!(
                "    {{ \"fsync\": \"{}\", \"wall_s\": {:.3}, \"reports_per_sec\": {:.0}, \
                 \"ratio_vs_no_journal\": {:.3} }}",
                tax.policy,
                tax.throughput.wall.as_secs_f64(),
                tax.throughput.reports_per_sec,
                tax.ratio_vs_baseline
            )
        })
        .collect();
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|r| {
            format!(
                "    {{ \"rounds\": {}, \"users_per_round\": {}, \"wall_s\": {:.3}, \
                 \"reports_per_sec\": {:.0} }}",
                r.rounds,
                r.users_per_round,
                r.wall.as_secs_f64(),
                r.reports_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"collector\",\n  \"equivalence\": {{\n    \"users\": {},\n    \
         \"bit_identical\": true,\n    \"in_process_ms\": {:.1},\n    \"wire_ms\": {:.1},\n    \
         \"wire_over_in_process\": {:.3}\n  }},\n  \
         \"degree_vector_round\": {{\n    \"users\": {},\n    \"groups\": {},\n    \
         \"connections\": 1,\n    \"crafted_reports\": {},\n    \"wall_s\": {:.3},\n    \
         \"reports_per_sec\": {:.0}\n  }},\n  \
         \"degree_vector_round_concurrent\": {{\n    \"users\": {},\n    \"groups\": {},\n    \
         \"connections\": {},\n    \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0},\n    \
         \"speedup_vs_single\": {:.2}\n  }},\n  \
         \"adjacency_round\": {{\n    \"users\": {},\n    \"connections\": 1,\n    \
         \"crafted_reports\": {},\n    \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0}\n  }},\n  \
         \"adjacency_round_concurrent\": {{\n    \"users\": {},\n    \"connections\": {},\n    \
         \"bit_identical\": true,\n    \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0}\n  }},\n  \
         \"multi_round\": [\n{}\n  ],\n  \
         \"multi_round_adjacency\": {{\n    \"rounds\": {},\n    \"users_per_round\": {},\n    \
         \"bit_identical\": true,\n    \"wall_s\": {:.3},\n    \"reports_per_sec\": {:.0}\n  }},\n  \
         \"metrics_overhead\": {:.3},\n  \
         \"metrics_overhead_detail\": {{\n    \"users\": {},\n    \"ab_pairs\": {},\n    \
         \"instrumented_wall_s\": {:.3},\n    \"baseline_wall_s\": {:.3},\n    \
         \"budget\": {:.2}\n  }},\n  \
         \"live_scrape\": {{\n    \"users\": {},\n    \"mid_round_scrapes\": {},\n    \
         \"folded_total\": {},\n    \"reconciles_with_summary\": true\n  }},\n  \
         \"durability\": {{\n    \"users\": {},\n    \"no_journal_reports_per_sec\": {:.0},\n    \
         \"policies\": [\n{}\n    ]\n  }},\n  \
         \"peak_rss_bytes\": {}\n}}\n",
        eq.users,
        eq.in_process.as_secs_f64() * 1e3,
        eq.wire.as_secs_f64() * 1e3,
        wire_over_in_process,
        degvec.reports,
        ROUND_GROUPS,
        degvec.crafted,
        degvec.wall.as_secs_f64(),
        degvec.reports_per_sec,
        degvec_multi.reports,
        ROUND_GROUPS,
        CONNECTIONS,
        degvec_multi.wall.as_secs_f64(),
        degvec_multi.reports_per_sec,
        speedup,
        adjacency.reports,
        adjacency.crafted,
        adjacency.wall.as_secs_f64(),
        adjacency.reports_per_sec,
        adjacency_multi.reports,
        CONNECTIONS,
        adjacency_multi.wall.as_secs_f64(),
        adjacency_multi.reports_per_sec,
        sweep_json.join(",\n"),
        multi_adjacency.rounds,
        multi_adjacency.users_per_round,
        multi_adjacency.wall.as_secs_f64(),
        multi_adjacency.reports_per_sec,
        overhead.ratio,
        overhead.users,
        overhead.runs,
        overhead.instrumented_wall.as_secs_f64(),
        overhead.baseline_wall.as_secs_f64(),
        OVERHEAD_BUDGET,
        scrape.throughput.reports,
        scrape.mid_scrapes,
        scrape.folded_total,
        DURABILITY_USERS,
        wal_baseline.reports_per_sec,
        durability_json.join(",\n"),
        peak_rss_bytes(),
    );
    std::fs::write("BENCH_collector.json", &json).expect("write BENCH_collector.json");
    print!("{json}");
}
