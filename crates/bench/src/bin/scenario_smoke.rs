//! Scenario-engine smoke benchmark: the unified builder versus a
//! hand-inlined replica of the pre-refactor exact pipeline, written to
//! `BENCH_scenario.json` for the perf trajectory (CI runs this after the
//! bench smoke step, alongside `BENCH_ingest.json`).
//!
//! The two paths are asserted bit-identical first; the JSON then records
//! median-of-reps wall-clock for each and the engine's relative overhead,
//! which must stay small (the builder adds trait dispatch and adapters,
//! not protocol work — target ≤ 2%, hard-failed at 25% to catch gross
//! regressions without flaking on machine noise).

use ldp_graph::datasets::Dataset;
use ldp_graph::Xoshiro256pp;
use ldp_protocols::protocol::STREAM_ATTACK;
use ldp_protocols::{LfGdpr, Metric};
use poison_core::scenario::Scenario;
use poison_core::{
    craft_reports, AttackOutcome, AttackStrategy, AttackerKnowledge, Mga, MgaOptions, TargetMetric,
    TargetSelection, ThreatModel,
};
use std::time::Instant;

const NODES: usize = 400;
const REPS: usize = 7;
const SEED: u64 = 61;

/// What `run_lfgdpr_attack` did before it became a wrapper over the
/// engine, inlined.
fn manual_exact_degree(
    graph: &ldp_graph::CsrGraph,
    protocol: &LfGdpr,
    threat: &ThreatModel,
    seed: u64,
) -> AttackOutcome {
    let extended = graph.with_isolated_nodes(threat.m_fake);
    let base = Xoshiro256pp::new(seed);
    let mut reports = protocol.collect_honest(&extended, &base);
    let view_before = protocol.aggregate(&reports);
    let before: Vec<f64> = threat
        .targets
        .iter()
        .map(|&t| view_before.degree_centrality(t))
        .collect();
    let knowledge =
        AttackerKnowledge::derive(protocol, threat.population(), graph.average_degree());
    let mut attack_rng = base.derive(STREAM_ATTACK);
    let crafted = craft_reports(
        AttackStrategy::Mga,
        TargetMetric::DegreeCentrality,
        protocol,
        threat,
        &knowledge,
        MgaOptions::default(),
        &mut attack_rng,
    );
    for (offset, report) in crafted.into_iter().enumerate() {
        reports[threat.n_genuine + offset] = report;
    }
    let view_after = protocol.aggregate(&reports);
    let after: Vec<f64> = threat
        .targets
        .iter()
        .map(|&t| view_after.degree_centrality(t))
        .collect();
    AttackOutcome::new(before, after)
}

fn median_ms(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let graph = Dataset::Facebook.generate_with_nodes(NODES, 21);
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    let mut rng = Xoshiro256pp::new(22);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);

    let engine = |seed: u64| {
        Scenario::on(protocol)
            .attack(Mga::default())
            .metric(Metric::Degree)
            .threat(threat.clone())
            .exact()
            .seed(seed)
            .run(&graph)
            .expect("valid scenario")
            .into_single_outcome()
    };

    // Equivalence before timing.
    let manual = manual_exact_degree(&graph, &protocol, &threat, SEED);
    let built = engine(SEED);
    assert_eq!(manual.before, built.before, "paths must be bit-identical");
    assert_eq!(manual.after, built.after, "paths must be bit-identical");

    // Warm-up, then interleaved reps so drift hits both paths equally.
    let _ = manual_exact_degree(&graph, &protocol, &threat, SEED);
    let _ = engine(SEED);
    let mut manual_samples = Vec::with_capacity(REPS);
    let mut engine_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let start = Instant::now();
        std::hint::black_box(manual_exact_degree(&graph, &protocol, &threat, SEED));
        manual_samples.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        std::hint::black_box(engine(SEED));
        engine_samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let manual_ms = median_ms(manual_samples);
    let builder_ms = median_ms(engine_samples);
    let overhead_pct = (builder_ms - manual_ms) / manual_ms * 100.0;

    let json = format!(
        "{{\n  \"bench\": \"scenario\",\n  \"n\": {NODES},\n  \"reps\": {REPS},\n  \
         \"manual_ms\": {manual_ms:.3},\n  \"builder_ms\": {builder_ms:.3},\n  \
         \"engine_overhead_pct\": {overhead_pct:.2}\n}}\n"
    );
    std::fs::write("BENCH_scenario.json", &json).expect("write BENCH_scenario.json");
    print!("{json}");

    assert!(
        overhead_pct < 25.0,
        "engine overhead {overhead_pct:.2}% is far beyond the ≤2% target"
    );
}
