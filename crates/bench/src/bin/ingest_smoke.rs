//! Ingestion smoke benchmark: batch vs. streamed aggregation at n = 1k,
//! written to `BENCH_ingest.json` to seed the perf trajectory (CI runs
//! this after the bench smoke step).
//!
//! `oneshot_ms` and `streamed_ms` are timed over the same pre-synthesized
//! reports, so they compare pure aggregation cost. The memory-bounded
//! lazy driver (`aggregate_stream`, reports generated per batch and never
//! all resident) is timed separately as `lazy_driver_ms_incl_synthesis`,
//! and the `*_report_bytes` fields describe exactly those two runs: the
//! one-shot path holds all `n` report bit vectors (`n · ⌈n/64⌉ · 8`
//! bytes), the lazy driver at most `batch_size` of them — `O(batch · n)`
//! instead of `O(n²)` as n grows. All three views are asserted
//! bit-identical.

use ldp_graph::Xoshiro256pp;
use ldp_mechanisms::RandomizedResponse;
use ldp_protocols::{AdjacencyReport, PerturbedView, StreamingAggregator};
use poison_bench::{synthetic_report, synthetic_reports};
use std::time::Instant;

const N: usize = 1_000;
const BATCH: usize = 256;
const REPS: usize = 5;

fn report_bytes(n: usize, resident_reports: usize) -> usize {
    resident_reports * n.div_ceil(64) * 8
}

fn main() {
    let rr = RandomizedResponse::from_keep_probability(0.9).expect("valid p");
    let reports: Vec<AdjacencyReport> = synthetic_reports(N, 0xBE57);

    // One-shot: single fold over all N resident reports.
    let start = Instant::now();
    let mut oneshot = None;
    for _ in 0..REPS {
        oneshot = Some(PerturbedView::from_reports(&reports, rr));
    }
    let oneshot_ms = start.elapsed().as_secs_f64() * 1e3 / REPS as f64;
    let oneshot = oneshot.expect("at least one rep");

    // Streamed: same reports folded in BATCH-sized batches.
    let start = Instant::now();
    let mut streamed = None;
    for _ in 0..REPS {
        let mut agg = StreamingAggregator::new(N, rr);
        for chunk in reports.chunks(BATCH) {
            agg.ingest_batch(chunk);
        }
        streamed = Some(agg.finalize());
    }
    let streamed_ms = start.elapsed().as_secs_f64() * 1e3 / REPS as f64;
    let streamed = streamed.expect("at least one rep");
    assert_eq!(
        streamed.matrix(),
        oneshot.matrix(),
        "streamed and one-shot views must be identical"
    );

    // The memory-bounded lazy driver (reports generated per batch, never
    // all resident) produces the same view bit for bit. This is the run
    // the peak-report-memory bound describes; its wall-clock includes
    // report synthesis, so it is reported under its own key.
    let start = Instant::now();
    let mut driven = None;
    for _ in 0..REPS {
        let mut gen_rng = Xoshiro256pp::new(0xBE57);
        driven = Some(ldp_protocols::ingest::aggregate_stream(
            N,
            rr,
            BATCH,
            std::iter::repeat_with(move || synthetic_report(N, &mut gen_rng)).take(N),
        ));
    }
    let lazy_driver_ms = start.elapsed().as_secs_f64() * 1e3 / REPS as f64;
    let driven = driven.expect("at least one rep");
    assert_eq!(driven.matrix(), oneshot.matrix(), "lazy driver must agree");

    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"n\": {N},\n  \"batch_size\": {BATCH},\n  \
         \"reps\": {REPS},\n  \"oneshot_ms\": {oneshot_ms:.3},\n  \
         \"streamed_ms\": {streamed_ms:.3},\n  \
         \"lazy_driver_ms_incl_synthesis\": {lazy_driver_ms:.3},\n  \
         \"oneshot_report_bytes\": {},\n  \"lazy_driver_peak_report_bytes\": {},\n  \
         \"edges\": {}\n}}\n",
        report_bytes(N, N),
        report_bytes(N, BATCH),
        oneshot.matrix().num_edges(),
    );
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    print!("{json}");
}
