//! Load generator for the collection daemon: replays honest +
//! attack-crafted report streams (via the `Attack` trait) against a
//! collector, at a configurable rate, and records throughput + peak RSS
//! in `BENCH_collector.json`.
//!
//! ```text
//! collector_loadgen [--channel degree-vector|adjacency]
//!                   [--users N]      population per round
//!                   [--groups K]     degree-vector groups (default 8)
//!                   [--rounds R]     simultaneous rounds (default 1)
//!                   [--sequential]   replay --rounds back-to-back instead
//!                   [--attack mga|rva|rna|none]   crafted tail (default mga)
//!                   [--beta F]       fake-user fraction (default 0.01)
//!                   [--rate R]       reports/sec cap per round (default unlimited)
//!                   [--connections C]  uploader sessions per round (default 1)
//!                   [--addr HOST:PORT]  external daemon (default: spawn one)
//!                   [--shards S]     shards of the spawned daemon (default 8)
//!                   [--seed S]       stream seed (default 7)
//!                   [--watch]        live stats table (STATS scrape every 250ms)
//!                   [--dump-metrics] Prometheus-style text dump after the run
//! ```
//!
//! Defaults replay the headline workload: one degree-vector round of 2²⁰
//! (≈1.05M) reports — the regime where the daemon's aggregate stays
//! `O(shards·groups)` no matter the population. `--rounds R` opens `R`
//! rounds **simultaneously** — one tenant per round, every round's
//! uploaders racing at once, so the daemon multiplexes `R` live
//! aggregates; the recorded reports/s is the aggregate across rounds
//! (`--sequential` restores the old back-to-back replay). `--connections
//! C` drives each round through `C` concurrent uploader sessions
//! (disjoint id slices, `SYNC` barriers, one coordinator closing the
//! round) — the aggregate-ingest workload of the concurrent session
//! plane. Adjacency rounds are bounded by the daemon's population cap
//! (the dense aggregate is `O(N²/8)` bytes; see DESIGN.md).
//!
//! `--watch` opens one extra session that scrapes the daemon's `STATS`
//! frame every 250ms and prints a live table — folded reports, ingest
//! rate, worker-queue depth, active sessions, admission refusals, stall
//! reaps — while the uploaders stream. `--dump-metrics` prints the full
//! registry as Prometheus-style text after the last round. Either way
//! the final summary and JSON record the stall-reap and session-cap
//! refusal counters scraped after the run.

use ldp_collector::{CollectorClient, CollectorError};
use ldp_protocols::wire;
use poison_bench::collector::{
    folded_total, peak_rss_bytes, run_adjacency_round, run_adjacency_round_concurrent,
    run_degree_vector_round, run_degree_vector_round_concurrent, samples_from_wire,
    shutdown_daemon, spawn_daemon, stat_counter, stat_gauge, LoadAttack, ThroughputResult,
};
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    channel: String,
    users: usize,
    groups: usize,
    rounds: u64,
    sequential: bool,
    attack: LoadAttack,
    beta: f64,
    rate: Option<u64>,
    connections: usize,
    addr: Option<String>,
    shards: usize,
    seed: u64,
    watch: bool,
    dump_metrics: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        channel: "degree-vector".into(),
        users: 1 << 20,
        groups: 8,
        rounds: 1,
        sequential: false,
        attack: LoadAttack::Mga,
        beta: 0.01,
        rate: None,
        connections: 1,
        addr: None,
        shards: 8,
        seed: 7,
        watch: false,
        dump_metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--channel" => args.channel = value("--channel"),
            "--users" => args.users = parse(&value("--users"), "--users"),
            "--groups" => args.groups = parse(&value("--groups"), "--groups"),
            "--rounds" => args.rounds = parse(&value("--rounds"), "--rounds"),
            "--sequential" => args.sequential = true,
            "--attack" => {
                let v = value("--attack");
                args.attack = LoadAttack::from_name(&v)
                    .unwrap_or_else(|| die(&format!("unknown attack {v}")));
            }
            "--beta" => args.beta = parse(&value("--beta"), "--beta"),
            "--rate" => args.rate = Some(parse(&value("--rate"), "--rate")),
            "--connections" => args.connections = parse(&value("--connections"), "--connections"),
            "--addr" => args.addr = Some(value("--addr")),
            "--shards" => args.shards = parse(&value("--shards"), "--shards"),
            "--seed" => args.seed = parse(&value("--seed"), "--seed"),
            "--watch" => args.watch = true,
            "--dump-metrics" => args.dump_metrics = true,
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.channel != "degree-vector" && args.channel != "adjacency" {
        die(&format!("unknown channel {}", args.channel));
    }
    if args.connections == 0 {
        die("--connections must be positive");
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value {s} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("collector_loadgen: {msg}");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let spawned = if args.addr.is_none() {
        Some(spawn_daemon(args.shards).expect("spawn loopback daemon"))
    } else {
        None
    };
    let addr = match (&args.addr, &spawned) {
        (Some(addr), _) => addr.clone(),
        (None, Some((addr, _))) => addr.to_string(),
        _ => unreachable!(),
    };
    let sock_addr: SocketAddr = addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .unwrap_or_else(|| die(&format!("cannot resolve {addr}")));

    // --watch: one extra session scraping the registry every 250ms while
    // the uploaders stream. Best-effort — a daemon with its registry
    // disabled just shows zeros.
    let watching = Arc::new(AtomicBool::new(true));
    let watcher = args.watch.then(|| {
        let watching = Arc::clone(&watching);
        std::thread::spawn(move || {
            let Ok(mut scraper) = CollectorClient::connect(sock_addr) else {
                eprintln!("watch: cannot connect a scrape session");
                return;
            };
            let started = Instant::now();
            let mut last_folded = 0u64;
            let mut last_at = 0.0f64;
            eprintln!(
                "{:>8}  {:>12}  {:>12}  {:>6}  {:>8}  {:>8}  {:>6}",
                "t(s)", "folded", "reports/s", "queue", "sessions", "refused", "reaps"
            );
            while watching.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                let Ok(entries) = scraper.stats() else {
                    eprintln!("watch: scrape session lost");
                    return;
                };
                let now = started.elapsed().as_secs_f64();
                let folded = folded_total(&entries);
                let rate = folded.saturating_sub(last_folded) as f64 / (now - last_at);
                eprintln!(
                    "{:>8.1}  {:>12}  {:>12.0}  {:>6}  {:>8}  {:>8}  {:>6}",
                    now,
                    folded,
                    rate,
                    stat_gauge(&entries, "worker_queue_depth"),
                    stat_gauge(&entries, "sessions_active"),
                    stat_counter(&entries, "sessions_refused_cap"),
                    stat_counter(&entries, "stall_reaps"),
                );
                last_folded = folded;
                last_at = now;
            }
        })
    });

    // One round's replay; `round` doubles as the tenant so simultaneous
    // rounds never contend on one tenant's quota.
    let replay = |round: u64| -> Result<ThroughputResult, CollectorError> {
        match (args.channel.as_str(), args.connections) {
            ("degree-vector", 1) => {
                let mut client = CollectorClient::connect(sock_addr)?.with_tenant(round);
                run_degree_vector_round(
                    &mut client,
                    round + 1,
                    args.users,
                    args.groups,
                    args.attack,
                    args.beta,
                    args.rate,
                    args.seed + round,
                )
            }
            ("degree-vector", c) => run_degree_vector_round_concurrent(
                sock_addr,
                round + 1,
                args.users,
                args.groups,
                args.attack,
                args.beta,
                args.rate,
                c,
                args.seed + round,
            ),
            ("adjacency", 1) => {
                let mut client = CollectorClient::connect(sock_addr)?.with_tenant(round);
                run_adjacency_round(
                    &mut client,
                    round + 1,
                    args.users,
                    args.attack,
                    args.beta,
                    args.rate,
                    args.seed + round,
                )
            }
            ("adjacency", c) => run_adjacency_round_concurrent(
                sock_addr,
                round + 1,
                args.users,
                args.attack,
                args.beta,
                c,
                args.seed + round,
            )
            .map(|(result, _, _, _)| result),
            _ => unreachable!("channel validated in parse_args"),
        }
    };

    let started = Instant::now();
    let results: Vec<ThroughputResult> = if args.sequential || args.rounds == 1 {
        (0..args.rounds)
            .map(|round| {
                let result = replay(round).expect("round replay");
                eprintln!(
                    "round {}: {} reports ({} crafted) over {} connection(s) in {:.3}s = {:.0} reports/s",
                    round + 1,
                    result.reports,
                    result.crafted,
                    args.connections,
                    result.wall.as_secs_f64(),
                    result.reports_per_sec
                );
                result
            })
            .collect()
    } else {
        // Simultaneous rounds: every round's uploaders race at once and
        // the daemon multiplexes R live aggregates.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..args.rounds)
                .map(|round| {
                    let replay = &replay;
                    scope.spawn(move || (round, replay(round).expect("round replay")))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    let (round, result) = h.join().expect("round thread");
                    eprintln!(
                        "round {} (simultaneous): {} reports ({} crafted) over {} connection(s) \
                         in {:.3}s = {:.0} reports/s",
                        round + 1,
                        result.reports,
                        result.crafted,
                        args.connections,
                        result.wall.as_secs_f64(),
                        result.reports_per_sec
                    );
                    result
                })
                .collect()
        })
    };
    let simultaneous = !(args.sequential || args.rounds == 1);
    watching.store(false, Ordering::Relaxed);
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }

    // Final registry scrape before the spawned daemon goes away: the
    // stall-reap and admission-refusal counters for the summary, plus
    // the optional full text dump.
    let final_scrape: Option<Vec<wire::StatsEntry>> = CollectorClient::connect(sock_addr)
        .ok()
        .and_then(|mut scraper| scraper.stats().ok());
    let (stall_reaps, refusals) = final_scrape.as_deref().map_or((0, 0), |entries| {
        (
            stat_counter(entries, "stall_reaps"),
            stat_counter(entries, "sessions_refused_cap"),
        )
    });
    if args.dump_metrics {
        match &final_scrape {
            Some(entries) => print!("{}", ldp_obs::render_samples(&samples_from_wire(entries))),
            None => eprintln!("dump-metrics: no scrape (daemon unreachable)"),
        }
    }
    if let Some((addr, handle)) = spawned {
        shutdown_daemon(addr, handle);
    }

    let reports: u64 = results.iter().map(|r| r.reports).sum();
    let crafted: u64 = results.iter().map(|r| r.crafted).sum();
    // Sequential rounds sum their walls (excluding setup between them);
    // simultaneous rounds share one wall clock.
    let wall: f64 = if simultaneous {
        started.elapsed().as_secs_f64()
    } else {
        results.iter().map(|r| r.wall.as_secs_f64()).sum()
    };
    eprintln!(
        "aggregate: {} rounds ({}) = {:.0} reports/s",
        args.rounds,
        if simultaneous {
            "simultaneous"
        } else {
            "sequential"
        },
        reports as f64 / wall,
    );
    eprintln!("observability: {stall_reaps} stall reap(s), {refusals} session-cap refusal(s)");
    let json = format!(
        "{{\n  \"bench\": \"collector_loadgen\",\n  \"channel\": \"{}\",\n  \
         \"users_per_round\": {},\n  \"rounds\": {},\n  \"simultaneous\": {},\n  \
         \"attack\": \"{:?}\",\n  \"connections\": {},\n  \
         \"reports\": {},\n  \"crafted_reports\": {},\n  \"wall_s\": {:.3},\n  \
         \"reports_per_sec\": {:.0},\n  \"rate_cap\": {},\n  \
         \"stall_reaps\": {},\n  \"session_cap_refusals\": {},\n  \"peak_rss_bytes\": {}\n}}\n",
        args.channel,
        args.users,
        args.rounds,
        simultaneous,
        args.attack,
        args.connections,
        reports,
        crafted,
        wall,
        reports as f64 / wall,
        args.rate.map_or("null".into(), |r| r.to_string()),
        stall_reaps,
        refusals,
        peak_rss_bytes(),
    );
    std::fs::write("BENCH_collector.json", &json).expect("write BENCH_collector.json");
    print!("{json}");
}
