//! # poison-bench
//!
//! Criterion benchmark suites for the workspace. The crate exports only
//! shared bench fixtures ([`synthetic_report`]/[`synthetic_reports`]);
//! see the `benches/` targets:
//!
//! * `substrate` — bitset kernels, CSR/bit-matrix triangle counting,
//!   generators, randomized-response throughput;
//! * `ingest` — one-shot vs. streamed report aggregation at n ∈ {1k, 5k,
//!   10k} (the `ingest_smoke` binary writes the n=1k numbers to
//!   `BENCH_ingest.json` for the perf trajectory);
//! * `protocols` — LF-GDPR collection/aggregation/estimation, LDPGen
//!   end-to-end;
//! * `attacks` — report crafting and both evaluation pipelines;
//! * `defenses` — Apriori mining and the two detectors;
//! * `figures` — one bench per paper table/figure at smoke scale.
//!
//! The [`collector`] module carries the shared harness behind the
//! `collector_smoke` and `collector_loadgen` binaries (loopback daemon
//! setup, report replay, throughput accounting, `BENCH_collector.json`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;

use ldp_graph::{BitSet, Xoshiro256pp};
use ldp_protocols::AdjacencyReport;
use rand::Rng;

/// Synthesizes one report over `n` users with word-level random bits at
/// ≈12.5% density (three AND-ed words — the regime an RR-perturbed graph
/// lives in), so ingestion benches isolate aggregation cost from
/// randomized-response cost.
pub fn synthetic_report(n: usize, rng: &mut Xoshiro256pp) -> AdjacencyReport {
    let mut bits = BitSet::new(n);
    for w in bits.words_mut() {
        *w = rng.gen::<u64>() & rng.gen::<u64>() & rng.gen::<u64>();
    }
    bits.mask_tail();
    let degree = rng.gen_range(0.0..n.max(1) as f64);
    AdjacencyReport::new(bits, degree)
}

/// A full population of [`synthetic_report`]s from one seed.
pub fn synthetic_reports(n: usize, seed: u64) -> Vec<AdjacencyReport> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n).map(|_| synthetic_report(n, &mut rng)).collect()
}
