//! # poison-bench
//!
//! Criterion benchmark suites for the workspace. The crate itself exports
//! nothing; see the `benches/` targets:
//!
//! * `substrate` — bitset kernels, CSR/bit-matrix triangle counting,
//!   generators, randomized-response throughput;
//! * `protocols` — LF-GDPR collection/aggregation/estimation, LDPGen
//!   end-to-end;
//! * `attacks` — report crafting and both evaluation pipelines;
//! * `defenses` — Apriori mining and the two detectors;
//! * `figures` — one bench per paper table/figure at smoke scale.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
