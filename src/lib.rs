//! # graph-ldp-poisoning
//!
//! A Rust reproduction of **"Data Poisoning Attacks to Local Differential
//! Privacy Protocols for Graphs"** (He, Huang, Ye, Hu — ICDE 2025).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on one crate:
//!
//! * [`graph`] — graph substrate: bitsets, CSR/dense graphs, exact metrics,
//!   generators, dataset stand-ins ([`ldp_graph`]).
//! * [`mechanisms`] — LDP primitives: randomized response, Laplace,
//!   samplers, frequency-estimation protocols ([`ldp_mechanisms`]).
//! * [`protocols`] — LF-GDPR and LDPGen behind the object-safe
//!   `GraphLdpProtocol` trait ([`ldp_protocols`]).
//! * [`attack`] — the paper's contribution: the `Attack` trait
//!   (RVA/RNA/MGA), gain, theory, and the unified scenario engine
//!   ([`poison_core`]).
//! * [`defense`] — Detect1/Detect2 countermeasures and baselines behind
//!   the `Defense` trait ([`poison_defense`]).
//! * [`collector`] — the sharded report-collection service: binary wire
//!   codec, TCP daemon with a round lifecycle and checkpoint/resume, and
//!   the bridge that evaluates scenarios over the wire ([`ldp_collector`]).
//! * [`experiments`] — the harness regenerating every table and figure
//!   ([`poison_experiments`]).
//!
//! ## Quickstart
//!
//! Every evaluation — any protocol, attack, metric, defense — is one
//! [`Scenario`](poison_core::scenario::Scenario) run:
//!
//! ```
//! use graph_ldp_poisoning::prelude::*;
//!
//! // A decentralized social graph of 300 genuine users.
//! let graph = Dataset::Facebook.generate_with_nodes(300, 7);
//!
//! // An attacker controls 5% fake users and targets 5% of nodes.
//! let mut rng = Xoshiro256pp::new(1);
//! let threat = ThreatModel::from_fractions(
//!     &graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
//!
//! // Maximal Gain Attack on LF-GDPR's degree-centrality estimates,
//! // filtered by the degree-consistency countermeasure.
//! let report = Scenario::on(LfGdpr::new(4.0).unwrap())
//!     .attack(Mga::default())
//!     .metric(Metric::Degree)
//!     .defend(DegreeConsistencyDefense::default())
//!     .threat(threat)
//!     .trials(3)
//!     .seed(42)
//!     .run(&graph)
//!     .unwrap();
//! assert!(report.mean_gain() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ldp_collector as collector;
pub use ldp_graph as graph;
pub use ldp_mechanisms as mechanisms;
pub use ldp_protocols as protocols;
pub use poison_core as attack;
pub use poison_defense as defense;
pub use poison_experiments as experiments;

/// The most common imports, bundled.
pub mod prelude {
    pub use ldp_graph::datasets::Dataset;
    pub use ldp_graph::{BitMatrix, BitSet, CsrGraph, GraphBuilder, Xoshiro256pp};
    pub use ldp_mechanisms::{LaplaceMechanism, PrivacyBudget, RandomizedResponse};
    pub use ldp_protocols::{
        AdjacencyReport, GraphLdpProtocol, LdpGen, LfGdpr, Metric, PerturbedView, ServerView,
        UserReport,
    };
    pub use poison_core::scenario::{EvalMode, Scenario, ScenarioReport};
    pub use poison_core::{
        attack_for, theorem1_degree_gain, theorem2_clustering_gain, Attack, AttackOutcome,
        AttackStrategy, AttackerKnowledge, Defense, Mga, MgaOptions, Rna, Rva, ScenarioError,
        TargetMetric, TargetSelection, ThreatModel,
    };
    pub use poison_defense::{
        CombinedDefense, DegreeConsistencyDefense, FrequentItemsetDefense, NaiveDegreeTails,
        NaiveTopDegree,
    };

    pub use ldp_collector::{
        CollectorClient, CollectorConfig, CollectorServer, ServeScenario, WireWorldRunner,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let g = Dataset::Facebook.generate_with_nodes(250, 1);
        assert_eq!(g.num_nodes(), 250);
        let _ = LfGdpr::new(4.0).unwrap();
    }
}
