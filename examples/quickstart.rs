//! Quickstart (the paper's headline scenario, §IV-B and Fig. 6): run the
//! full LF-GDPR pipeline on a synthetic social graph, then mount the
//! Maximal Gain Attack and watch the targets' degree-centrality estimates
//! move, checking the measured gain against Theorem 1.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graph_ldp_poisoning::prelude::*;

fn main() {
    // 1. A decentralized social network: the Facebook stand-in scaled to
    //    800 genuine users (same average degree as the SNAP original).
    let graph = Dataset::Facebook.generate_with_nodes(800, 7);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.average_degree()
    );

    // 2. The server deploys LF-GDPR with total privacy budget ε = 4
    //    (ε/2 for the adjacency bit vectors, ε/2 for the degrees).
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    println!(
        "protocol: p_keep = {:.4}, laplace scale = {:.2}",
        protocol.p_keep(),
        protocol.laplace().scale()
    );

    // 3. Honest collection: every user perturbs locally and uploads.
    let base = Xoshiro256pp::new(42);
    let reports = protocol.collect_honest(&graph, &base);
    let view = protocol.aggregate(&reports);
    println!(
        "server view: avg perturbed degree {:.1}, edge density {:.4}",
        view.average_perturbed_degree(),
        view.edge_density()
    );

    // 4. The attack: 5% fake users, 5% targets, Maximal Gain Attack.
    let mut rng = Xoshiro256pp::new(1);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    println!(
        "threat model: m = {} fake users, r = {} targets",
        threat.m_fake,
        threat.num_targets()
    );

    let outcome = Scenario::on(protocol)
        .attack(Mga::default())
        .metric(Metric::Degree)
        .threat(threat.clone())
        .seed(42)
        .run(&graph)
        .expect("valid scenario")
        .into_single_outcome();

    // 5. Damage report.
    println!("\nper-target degree centrality (first 5 targets):");
    for (i, t) in threat.targets.iter().take(5).enumerate() {
        println!(
            "  node {t:>4}: before {:.4} -> after {:.4}",
            outcome.before[i], outcome.after[i]
        );
    }
    println!("\noverall gain (paper Eq. 5): {:.4}", outcome.gain());
    let theory = theorem1_degree_gain(
        threat.m_fake,
        threat.num_targets(),
        threat.population(),
        protocol.expected_perturbed_degree(threat.population(), graph.average_degree()),
    );
    println!("Theorem 1 prediction:        {theory:.4}");
}
