//! Degree-centrality attack comparison (the scenario of paper §V and
//! Fig. 6): run RVA, RNA, and MGA on the same population and the same
//! randomness, across privacy budgets, and print the gain table.
//!
//! ```sh
//! cargo run --release --example attack_degree_centrality
//! ```

use graph_ldp_poisoning::prelude::*;

fn main() {
    let graph = Dataset::Facebook.generate_with_nodes(1_000, 11);
    let mut rng = Xoshiro256pp::new(3);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    println!(
        "population: {} genuine + {} fake, {} targets\n",
        threat.n_genuine,
        threat.m_fake,
        threat.num_targets()
    );

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "epsilon", "RVA", "RNA", "MGA", "MGA-theory"
    );
    let trials = 3u64;
    for epsilon in [1.0, 2.0, 4.0, 6.0, 8.0] {
        let protocol = LfGdpr::new(epsilon).expect("valid budget");
        let mut gains = Vec::new();
        for strategy in AttackStrategy::ALL {
            let g = Scenario::on(protocol)
                .attack(attack_for(strategy, MgaOptions::default()))
                .metric(Metric::Degree)
                .threat(threat.clone())
                .exact()
                .trials(trials)
                .seed(1_000 + (epsilon as u64) * 17)
                .run(&graph)
                .expect("valid scenario")
                .mean_gain();
            gains.push(g);
        }
        let theory = theorem1_degree_gain(
            threat.m_fake,
            threat.num_targets(),
            threat.population(),
            protocol.expected_perturbed_degree(threat.population(), graph.average_degree()),
        );
        println!(
            "{epsilon:>8.1} {:>10.4} {:>10.4} {:>10.4} {theory:>12.4}",
            gains[0], gains[1], gains[2]
        );
    }

    // The analytic sampled mode reproduces the same experiment without the
    // O(N^2) server view — this is what makes the full 107k-node Gplus
    // configuration feasible.
    println!("\nsampled (analytic) mode at 10x the population:");
    let big = Dataset::Facebook.generate_with_nodes(10_000, 13);
    let mut rng = Xoshiro256pp::new(5);
    let threat =
        ThreatModel::from_fractions(&big, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    let g = Scenario::on(protocol)
        .attack(Mga::default())
        .metric(Metric::Degree)
        .threat(threat)
        .sampled()
        .trials(trials)
        .seed(9_000)
        .run(&big)
        .expect("valid scenario")
        .mean_gain();
    println!("  MGA gain on n = 10,000: {g:.4}");
}
