//! Clustering-coefficient attack (paper §VI, Fig. 9): MGA's prioritized
//! allocation — fake users interconnect first, then connect to targets —
//! manufactures triangles incident to the targets, inflating their
//! estimated clustering coefficients.
//!
//! ```sh
//! cargo run --release --example attack_clustering_coefficient
//! ```

use graph_ldp_poisoning::graph::metrics::local_clustering_coefficients;
use graph_ldp_poisoning::prelude::*;

fn main() {
    let graph = Dataset::AstroPh.generate_with_nodes(800, 21);
    let truth = local_clustering_coefficients(&graph);
    let mut rng = Xoshiro256pp::new(9);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    let protocol = LfGdpr::new(4.0).expect("valid budget");

    println!(
        "attacking {} targets with {} fake users\n",
        threat.num_targets(),
        threat.m_fake
    );

    // Compare the three strategies under identical randomness.
    println!(
        "{:>8} {:>12} {:>14}",
        "attack", "overall gain", "signed change"
    );
    let mut outcomes = Vec::new();
    for strategy in AttackStrategy::ALL {
        let outcome = Scenario::on(protocol)
            .attack(attack_for(strategy, MgaOptions::default()))
            .metric(Metric::Clustering)
            .threat(threat.clone())
            .seed(77)
            .run(&graph)
            .expect("valid scenario")
            .into_single_outcome();
        println!(
            "{:>8} {:>12.4} {:>14.4}",
            strategy.name(),
            outcome.gain(),
            outcome.signed_gain()
        );
        outcomes.push(outcome);
    }

    // Ablation (DESIGN.md §7): MGA without the fake-clique prioritization.
    let no_priority = Scenario::on(protocol)
        .attack(Mga::new(MgaOptions {
            prioritize_fake_edges: false,
            ..Default::default()
        }))
        .metric(Metric::Clustering)
        .threat(threat.clone())
        .seed(77)
        .run(&graph)
        .expect("valid scenario")
        .into_single_outcome();
    println!(
        "{:>8} {:>12.4} {:>14.4}   (MGA ablation: no fake-fake clique)",
        "MGA*",
        no_priority.gain(),
        no_priority.signed_gain()
    );

    // Per-target view for MGA: ground truth, honest estimate, attacked.
    let mga = &outcomes[2];
    println!("\nfirst 5 targets under MGA (truth / honest estimate / attacked estimate):");
    for (i, &t) in threat.targets.iter().take(5).enumerate() {
        println!(
            "  node {t:>4}: {:.4} / {:.4} / {:.4}",
            truth[t], mga.before[i], mga.after[i]
        );
    }

    let theory = theorem2_clustering_gain(
        threat.m_fake,
        threat.num_targets(),
        threat.population(),
        protocol.expected_perturbed_degree(threat.population(), graph.average_degree()),
        protocol.p_keep(),
    );
    println!("\nTheorem 2 prediction for MGA: {theory:.4}");
}
