//! Countermeasures (paper §VII, Figs. 12–13): apply the frequent-itemset
//! defense (Detect1) to MGA and the degree-consistency defense (Detect2)
//! to RVA, next to the naive baselines, and report surviving gain plus
//! detection precision/recall.
//!
//! ```sh
//! cargo run --release --example countermeasures
//! ```

use graph_ldp_poisoning::prelude::*;

fn main() {
    let graph = Dataset::Facebook.generate_with_nodes(800, 31);
    let mut rng = Xoshiro256pp::new(13);
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    let protocol = LfGdpr::new(4.0).expect("valid budget");
    let opts = MgaOptions::default();
    let seed = 101;

    // Undefended references.
    let undefended = |strategy| {
        Scenario::on(protocol)
            .attack(attack_for(strategy, opts))
            .metric(Metric::Degree)
            .threat(threat.clone())
            .seed(seed)
            .run(&graph)
            .expect("valid scenario")
            .into_single_outcome()
    };
    let mga_raw = undefended(AttackStrategy::Mga);
    let rva_raw = undefended(AttackStrategy::Rva);
    println!(
        "undefended gains: MGA {:.4}, RVA {:.4}\n",
        mga_raw.gain(),
        rva_raw.gain()
    );

    println!(
        "{:<22} {:>8} {:>14} {:>10} {:>8}",
        "defense vs attack", "gain", "flagged (f/g)", "precision", "recall"
    );
    let report = |label: &str, strategy: AttackStrategy, defense: &dyn Defense| {
        let out = Scenario::on(protocol)
            .attack(attack_for(strategy, opts))
            .metric(Metric::Degree)
            .defend(defense)
            .threat(threat.clone())
            .seed(seed)
            .run(&graph)
            .expect("valid scenario");
        let trial = &out.trials[0];
        println!(
            "{:<22} {:>8.4} {:>7}/{:<6} {:>10.2} {:>8.2}",
            label,
            trial.gain(),
            trial.flagged_fake.unwrap_or(0),
            trial.flagged_genuine.unwrap_or(0),
            out.mean_precision().unwrap_or(0.0),
            out.mean_recall().unwrap_or(0.0)
        );
    };

    // Detect1 threshold sweep against MGA (Fig. 12a shape).
    for threshold in [50usize, 150, 300] {
        let d1 = FrequentItemsetDefense::new(threshold);
        report(
            &format!("Detect1(t={threshold}) vs MGA"),
            AttackStrategy::Mga,
            &d1,
        );
    }
    report(
        "Naive1 vs MGA",
        AttackStrategy::Mga,
        &NaiveTopDegree::default(),
    );

    println!();
    // Detect2 against RVA (Fig. 12b shape).
    report(
        "Detect2 vs RVA",
        AttackStrategy::Rva,
        &DegreeConsistencyDefense::default(),
    );
    report(
        "Naive2 vs RVA",
        AttackStrategy::Rva,
        &NaiveDegreeTails::default(),
    );

    println!("\ntakeaway (paper §VIII-D): both countermeasures shave the gains but");
    println!("neither neutralizes the attacks — new defenses are needed.");
}
