//! LDPGen end-to-end (paper §VIII-E, Figs. 14b/15b): synthesize a graph
//! under LDP, compare its metrics with the original, then poison the
//! degree-vector channel with the three attacks.
//!
//! ```sh
//! cargo run --release --example ldpgen_synthesis
//! ```

use graph_ldp_poisoning::graph::community::label_propagation;
use graph_ldp_poisoning::graph::metrics::{average_clustering_coefficient, modularity};
use graph_ldp_poisoning::prelude::*;

fn main() {
    let graph = Dataset::Facebook.generate_with_nodes(600, 17);
    let protocol = LdpGen::with_defaults(4.0).expect("valid budget");
    let base = Xoshiro256pp::new(23);

    // Honest synthesis.
    let synthetic = protocol.run(&graph, &base);
    println!(
        "original:  {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "synthetic: {} nodes, {} edges",
        synthetic.num_nodes(),
        synthetic.num_edges()
    );
    println!(
        "avg clustering: original {:.4}, synthetic {:.4}",
        average_clustering_coefficient(&graph),
        average_clustering_coefficient(&synthetic)
    );
    let mut rng = Xoshiro256pp::new(29);
    let partition = label_propagation(&graph, 20, &mut rng);
    println!(
        "modularity of the label-propagation partition: original {:.4}, synthetic {:.4}\n",
        modularity(&graph, &partition),
        {
            // The synthetic graph has the same node set, so the partition
            // transfers directly.
            modularity(&synthetic, &partition)
        }
    );

    // Poison it.
    let threat =
        ThreatModel::from_fractions(&graph, 0.05, 0.05, TargetSelection::UniformRandom, &mut rng);
    println!(
        "attack: {} fake users, {} targets",
        threat.m_fake,
        threat.num_targets()
    );
    println!(
        "{:>8} {:>22} {:>18}",
        "attack", "clustering-coeff gain", "modularity gain"
    );
    for strategy in AttackStrategy::ALL {
        let scenario = |metric| {
            Scenario::on(protocol)
                .attack(attack_for(strategy, MgaOptions::default()))
                .metric(metric)
                .threat(threat.clone())
                .partition(&partition)
                .seed(7)
                .run(&graph)
                .expect("valid scenario")
                .into_single_outcome()
        };
        let cc = scenario(Metric::Clustering);
        let q = scenario(Metric::Modularity);
        println!(
            "{:>8} {:>22.4} {:>18.4}",
            strategy.name(),
            cc.gain(),
            q.gain()
        );
    }
}
